// Package stats provides the measurement primitives used throughout the
// simulator: counters, running means, histograms, and per-processor
// execution-time breakdowns matching the categories of the paper's
// Figures 3 and 4 (NoFree, Transit, Fault, TLB, Other).
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean accumulates a running arithmetic mean.
type Mean struct {
	Sum   float64
	Count uint64
}

// Add records one sample.
func (m *Mean) Add(v float64) {
	m.Sum += v
	m.Count++
}

// Value returns the current mean, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Merge folds other into m.
func (m *Mean) Merge(other Mean) {
	m.Sum += other.Sum
	m.Count += other.Count
}

// Histogram is a fixed-bucket histogram over [0, +inf) with power-of-two
// bucket edges; useful for latency distributions.
type Histogram struct {
	Buckets [64]uint64
	Total   uint64
	SumV    float64
	MaxV    float64
}

// Add records one nonnegative sample.
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	b := 0
	if v >= 1 {
		b = int(math.Log2(v)) + 1
		if b >= len(h.Buckets) {
			b = len(h.Buckets) - 1
		}
	}
	h.Buckets[b]++
	h.Total++
	h.SumV += v
	if v > h.MaxV {
		h.MaxV = v
	}
}

// Mean returns the mean of recorded samples.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	return h.SumV / float64(h.Total)
}

// Percentile returns an upper bound on the p-quantile (0 < p <= 1) using
// bucket upper edges.
func (h *Histogram) Percentile(p float64) float64 {
	if h.Total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(h.Total)))
	var seen uint64
	for b, c := range h.Buckets {
		seen += c
		if seen >= target {
			if b == 0 {
				return 1
			}
			return math.Pow(2, float64(b))
		}
	}
	return h.MaxV
}

// Category is one component of the execution-time breakdown in the paper's
// Figures 3 and 4.
type Category int

// Breakdown categories, top to bottom of the paper's bars.
const (
	NoFree  Category = iota // stalled waiting for a free page frame
	Transit                 // waiting for another node's in-flight fetch
	Fault                   // page-fault service (disk / ring read)
	TLB                     // TLB miss + shootdown + interrupt overhead
	Other                   // compute, cache miss, synchronization
	NumCategories
)

// String returns the paper's label for the category.
func (c Category) String() string {
	switch c {
	case NoFree:
		return "NoFree"
	case Transit:
		return "Transit"
	case Fault:
		return "Fault"
	case TLB:
		return "TLB"
	case Other:
		return "Other"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Breakdown accumulates time per category for one processor.
type Breakdown struct {
	T [NumCategories]int64
}

// Add charges d pcycles to category c.
func (b *Breakdown) Add(c Category, d int64) {
	if d < 0 {
		panic(fmt.Sprintf("stats: negative charge %d to %v", d, c))
	}
	b.T[c] += d
}

// Total returns the sum across categories.
func (b *Breakdown) Total() int64 {
	var s int64
	for _, v := range b.T {
		s += v
	}
	return s
}

// Merge folds other into b.
func (b *Breakdown) Merge(other Breakdown) {
	for i := range b.T {
		b.T[i] += other.T[i]
	}
}

// Fractions returns each category as a fraction of the total (zeros if the
// total is zero).
func (b *Breakdown) Fractions() [NumCategories]float64 {
	var f [NumCategories]float64
	tot := b.Total()
	if tot == 0 {
		return f
	}
	for i, v := range b.T {
		f[i] = float64(v) / float64(tot)
	}
	return f
}

// Table renders rows of labeled columns as an aligned ASCII table, in the
// style used by cmd/nwbench to reproduce the paper's tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

// WriteCSV emits the table as CSV: a comment line with the title, the
// header row, then the data rows.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FmtF formats a float with the given decimals, trimming to a compact form.
func FmtF(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// FmtPct formats a fraction as a percentage string like "42%".
func FmtPct(frac float64) string {
	return fmt.Sprintf("%.0f%%", frac*100)
}

// SortedKeys returns the keys of m in sorted order, for deterministic
// iteration when rendering results.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
