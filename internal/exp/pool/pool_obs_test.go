package pool

import (
	"testing"
	"time"

	"nwcache/internal/core"
	"nwcache/internal/obs"
)

// waitIdle blocks until every submitted cell's completion bookkeeping
// (LRU entry, in-flight decrement) has run — Wait returns on the done
// channel, which closes just before the accounting defer.
func waitIdle(t *testing.T, p *Pool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never went idle: QueueDepth = %d", p.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueueDepthTracksInFlight(t *testing.T) {
	p := New(1)
	var futs []*Future
	for i := 0; i < 3; i++ {
		f, fresh := p.Submit(badCell(i))
		if !fresh {
			t.Fatalf("cell %d not fresh", i)
		}
		futs = append(futs, f)
	}
	// The in-flight count is bumped synchronously in Submit, so with one
	// worker and nothing collected yet all three cells are pending.
	if got := p.QueueDepth(); got != 3 {
		t.Fatalf("QueueDepth = %d, want 3", got)
	}
	// A memo hit is not a fresh submission and must not bump the depth.
	p.Submit(badCell(0))
	if got := p.QueueDepth(); got != 3 {
		t.Fatalf("QueueDepth after memo hit = %d, want 3", got)
	}
	for _, f := range futs {
		f.Wait()
	}
	waitIdle(t, p)
}

// TestObserveProbesPinCounters drives every accounting path — fresh
// run, memo hit, backing load, LRU evict — and pins the exact probe
// values a snapshot reports.
func TestObserveProbesPinCounters(t *testing.T) {
	b := newMapBacking()
	seed := New(1)
	seed.SetBacking(b)
	lu := cell("lu", core.Standard, core.Optimal)
	if _, err := seed.Run(lu); err != nil {
		t.Fatal(err)
	}

	p := New(1)
	p.SetBacking(b)
	p.SetMemoLimit(2)
	reg := obs.NewRegistry()
	p.Observe(reg.Root().Scope("pool"))

	for _, c := range []core.Cell{
		badCell(0), // fresh run
		badCell(0), // memo hit
		lu,         // backing load (stored by the seed pool)
		badCell(1), // fresh run
		badCell(2), // fresh run; memo limit 2 -> 2 evictions by now
	} {
		f, _ := p.Submit(c)
		f.Wait()
	}
	waitIdle(t, p)

	snap := reg.Snapshot()
	want := map[string]int64{
		"pool.runs":        3,
		"pool.hits":        1,
		"pool.loads":       1,
		"pool.evicts":      2,
		"pool.hit_pct":     40, // (1 hit + 1 load) of 5 submissions
		"pool.queue_depth": 0,
		"pool.memo_len":    2,
	}
	for name, v := range want {
		mv, ok := snap.Get(name)
		if !ok {
			t.Fatalf("snapshot missing %s", name)
		}
		if mv.Value != v {
			t.Errorf("%s = %d, want %d", name, mv.Value, v)
		}
	}
	// Kind sanity: cumulative quantities expose as counters, levels as
	// gauges (what the Prometheus exposition's # TYPE lines derive from).
	for name, kind := range map[string]string{
		"pool.runs": "counter", "pool.queue_depth": "gauge", "pool.hit_pct": "gauge",
	} {
		if mv, _ := snap.Get(name); mv.Kind != kind {
			t.Errorf("%s kind = %s, want %s", name, mv.Kind, kind)
		}
	}
	// Observe on a nil scope is a no-op (disabled-mode contract).
	p.Observe(nil)
}
