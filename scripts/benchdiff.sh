#!/bin/sh
# Compare two bench.sh outputs (e.g. BENCH_1.json vs BENCH_2.json) and
# print per-benchmark deltas for time and allocations.
#
# Usage: scripts/benchdiff.sh [--warn] [OLD.json] NEW.json
#
# When OLD.json is omitted the latest checked-in baseline is used: the
# highest-numbered BENCH_*.json in the repo root, excluding NEW itself.
#
# Benchmarks present in only one file are listed without a delta. Exits
# non-zero on malformed input, zero otherwise (it reports; it does not
# judge regressions — CI stays green either way).
#
# With --warn, benchmarks whose ns/op regressed by more than
# BENCHDIFF_THRESHOLD percent (default 15) are additionally flagged as
# GitHub Actions "::warning::" annotations. Bench noise on shared
# runners makes a hard gate counterproductive, so the warning is
# advisory: --warn still always exits 0.
set -eu

warn=0
if [ "${1:-}" = "--warn" ]; then
  warn=1
  shift
fi
case $# in
2)
  old="$1"
  new="$2"
  ;;
1)
  # OLD omitted: fall back to the latest checked-in BENCH_*.json
  # baseline (highest number wins), skipping NEW itself.
  new="$1"
  repo="$(cd "$(dirname "$0")/.." && pwd)"
  old=""
  for f in $(ls "$repo"/BENCH_*.json 2>/dev/null | sort -t_ -k2 -n); do
    [ "$f" -ef "$new" ] 2>/dev/null && continue
    old="$f"
  done
  if [ -z "$old" ]; then
    echo "$0: no baseline BENCH_*.json found in $repo" >&2
    exit 2
  fi
  echo "benchdiff: baseline $old" >&2
  ;;
*)
  echo "usage: $0 [--warn] [OLD.json] NEW.json" >&2
  exit 2
  ;;
esac
threshold="${BENCHDIFF_THRESHOLD:-15}"

# bench.sh emits one record per line; pull the fields back out with awk.
extract() {
  awk '
    /"name"/ {
      line = $0
      if (match(line, /"name":"[^"]*"/)) {
        name = substr(line, RSTART + 8, RLENGTH - 9)
        ns = "null"; allocs = "null"
        if (match(line, /"ns_per_op":[0-9.e+-]+/))
          ns = substr(line, RSTART + 12, RLENGTH - 12)
        if (match(line, /"allocs_per_op":[0-9]+/))
          allocs = substr(line, RSTART + 16, RLENGTH - 16)
        print name, ns, allocs
      }
    }
  ' "$1"
}

extract "$old" > "${TMPDIR:-/tmp}/benchdiff_old.$$"
extract "$new" > "${TMPDIR:-/tmp}/benchdiff_new.$$"
trap 'rm -f "${TMPDIR:-/tmp}/benchdiff_old.$$" "${TMPDIR:-/tmp}/benchdiff_new.$$"' EXIT

awk -v oldfile="${TMPDIR:-/tmp}/benchdiff_old.$$" '
  BEGIN {
    while ((getline line < oldfile) > 0) {
      split(line, f, " ")
      ons[f[1]] = f[2]; oal[f[1]] = f[3]; seen[f[1]] = 1
    }
    close(oldfile)
    printf "%-34s %14s %14s %8s %12s %12s %8s\n",
      "benchmark", "old-ns/op", "new-ns/op", "time", "old-allocs", "new-allocs", "allocs"
  }
  {
    name = $1; nns = $2; nal = $3
    if (!(name in ons)) {
      printf "%-34s %14s %14s %8s %12s %12s %8s   (new)\n", name, "-", nns, "-", "-", nal, "-"
      next
    }
    done[name] = 1
    dt = (ons[name] + 0 > 0) ? sprintf("%+.1f%%", 100 * (nns - ons[name]) / ons[name]) : "-"
    da = (oal[name] + 0 > 0) ? sprintf("%+.1f%%", 100 * (nal - oal[name]) / oal[name]) : "-"
    printf "%-34s %14s %14s %8s %12s %12s %8s\n", name, ons[name], nns, dt, oal[name], nal, da
  }
  END {
    for (name in seen) if (!(name in done))
      printf "%-34s %14s %14s %8s %12s %12s %8s   (dropped)\n", name, ons[name], "-", "-", oal[name], "-", "-"
  }
' "${TMPDIR:-/tmp}/benchdiff_new.$$"

if [ "$warn" = 1 ]; then
  awk -v oldfile="${TMPDIR:-/tmp}/benchdiff_old.$$" -v thr="$threshold" '
    BEGIN {
      while ((getline line < oldfile) > 0) {
        split(line, f, " ")
        ons[f[1]] = f[2]
      }
      close(oldfile)
    }
    {
      name = $1; nns = $2
      if (!(name in ons) || ons[name] + 0 <= 0) next
      pct = 100 * (nns - ons[name]) / ons[name]
      if (pct > thr)
        printf "::warning title=bench regression::%s ns/op regressed %+.1f%% (%s -> %s, threshold %s%%)\n",
          name, pct, ons[name], nns, thr
    }
  ' "${TMPDIR:-/tmp}/benchdiff_new.$$"
fi
