package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"nwcache/internal/core"
	"nwcache/internal/exp/pool"
	"nwcache/internal/guard"
	"nwcache/internal/machine"
	"nwcache/internal/obs"
	"nwcache/internal/sim"
	"nwcache/internal/stats"
)

// ErrIncomplete is returned by Runner.Run when the shard stopped before
// finishing every cell (the -max-cells cap, or a graceful drain);
// re-running the same shard resumes from the STATE file.
var ErrIncomplete = errors.New("sweep: shard incomplete (resume to continue)")

// ErrPoisoned is returned by Runner.Run when every owned cell has a
// STATE record but some of those records are poison quarantines: the
// shard cannot emit its outputs (a quarantined cell has no result) and
// the poisoned cells need a -retry-poison pass or a fix. The CLI maps
// this to its own exit code so CI can tell "poisoned" from "broken".
var ErrPoisoned = errors.New("sweep: poisoned cells remain (re-run with -retry-poison, or fix and retry)")

// Summary is the accounting of one shard run: how each owned cell was
// satisfied. FromState cells were skipped via the STATE file (with a
// digest-verified cache entry backing the record); FromCache cells had
// no STATE record but a verified cache entry (e.g. completed by a
// killed run's in-flight workers, or by an earlier overlapping sweep);
// Fresh cells were actually simulated. Poisoned counts cells
// quarantined by a panic or a watchdog verdict — fresh quarantines and
// replayed poison records alike; PoisonRetried counts replayed poison
// records that were re-admitted under RetryPoison.
type Summary struct {
	Shard, Shards int
	Cells         int
	FromState     int
	FromCache     int
	Fresh         int
	Poisoned      int
	PoisonRetried int
	Done          bool
}

// String renders the one-line progress summary the CLI prints (and the
// CI resume gate greps). The poison suffix only appears when cells
// were quarantined, so clean runs keep the historical format.
func (s Summary) String() string {
	status := "complete"
	if !s.Done {
		status = "incomplete"
	}
	line := fmt.Sprintf("shard %d/%d %s: %d cells = %d state + %d cache + %d fresh",
		s.Shard, s.Shards, status, s.Cells, s.FromState, s.FromCache, s.Fresh)
	if s.Poisoned > 0 {
		line += fmt.Sprintf(" (%d poisoned)", s.Poisoned)
	}
	return line
}

// Runner executes one shard of a sweep grid with checkpoint/resume.
type Runner struct {
	Spec   *Spec
	Shard  int // shard index in [0, Shards)
	Shards int // total shards (>= 1)
	Dir    string

	// Pool schedules the simulations (nil: a private GOMAXPROCS pool).
	Pool *pool.Pool
	// CacheDir overrides the cache location (default Dir/cache) so
	// overlapping sweeps in different directories can share results.
	CacheDir string
	// MaxFresh, when > 0, stops the shard after that many fresh
	// simulations — Run then returns ErrIncomplete and the next Run
	// resumes. This is also how CI simulates a mid-sweep kill.
	MaxFresh int
	// Par and Pdes select the parallel fast paths for fresh cells
	// (byte-identical results; excluded from cell keys).
	Par  bool
	Pdes int
	// Progress, if set, is called with a label per fresh simulation.
	Progress func(label string)

	// FS is the host filesystem seam for everything the shard persists
	// (STATE, cache, shard outputs). nil: the real OS. The chaos
	// harness injects seeded faults here.
	FS guard.FS
	// Retry bounds transient host-I/O retries on STATE appends and
	// cache traffic. nil: a retrier with guard.DefaultRetryPolicy(0),
	// so ENOSPC/EINTR/short-write blips degrade instead of killing the
	// shard.
	Retry *guard.Retrier
	// Guard supervises each fresh cell with a wall-clock budget and a
	// stuck-run watchdog (the zero value disables supervision — cells
	// are waited on unbounded, exactly as before the guard layer).
	// Violations quarantine the cell as a STATE poison record; the
	// shard keeps going.
	Guard guard.CellGuard
	// RetryPoison re-admits cells whose replayed STATE record is a
	// poison quarantine (the -retry-poison pass).
	RetryPoison bool
	// Draining, when it reports true, makes the shard stop admitting
	// cells: in-flight cells finish and checkpoint, then Run returns
	// ErrIncomplete so a later run resumes. This is the signal-drain
	// hook — the CLI flips it on SIGINT/SIGTERM.
	Draining func() bool
	// OnPoison, if set, is called once per freshly quarantined cell.
	OnPoison func(c core.Cell, reason string)
	// Sabotage, if set, makes matching cells panic inside their
	// simulation (through the observability hook, so the cell key is
	// unchanged). This exists for the chaos harness — a deliberately
	// panicking cell proves the quarantine path end to end.
	Sabotage func(c core.Cell) bool

	// OnEvent, if set, receives the shard's structured lifecycle events
	// (obs.Event): shard start/done, one event per cell settling (STATE
	// replay, cache adoption, fresh completion, poison), each carrying
	// done/total progress and — once a fresh duration is known — an ETA
	// projected from the mean fresh-cell wall time. Events are advisory
	// telemetry and never touch the artifacts; unset costs nothing.
	OnEvent func(ev obs.Event)
	// Live, if set, receives a published live view per fresh cell (the
	// service layer's /metrics and /series feed). When the spec samples
	// series the record sampler is published as-is; otherwise a live-only
	// sampler at LiveInterval is attached, which never reaches the cell's
	// cache record — merged artifacts stay byte-identical either way.
	Live *obs.LiveSet
	// LiveInterval is the live-only sampling interval in pcycles
	// (<= 0: DefaultLiveInterval). Ignored when the spec samples series.
	LiveInterval int64

	cache *Cache
}

// DefaultLiveInterval is the live-only sampler tick period (pcycles)
// when a Live set is attached but the spec itself samples no series.
const DefaultLiveInterval = 100_000

// Paths within the sweep directory.
func (r *Runner) statePath() string {
	return filepath.Join(r.Dir, fmt.Sprintf("shard-%dof%d.state", r.Shard, r.Shards))
}
func (r *Runner) ndjsonPath() string {
	return filepath.Join(r.Dir, fmt.Sprintf("shard-%dof%d.ndjson", r.Shard, r.Shards))
}
func (r *Runner) manifestPath() string {
	return filepath.Join(r.Dir, fmt.Sprintf("shard-%dof%d.manifest.json", r.Shard, r.Shards))
}

// MergedPaths returns the merged artifact locations for a sweep
// directory: the NDJSON of every cell record, the merged manifest, and
// the merged series file (written only when the spec samples series).
func MergedPaths(dir string) (ndjson, manifest, series string) {
	return filepath.Join(dir, "merged.ndjson"),
		filepath.Join(dir, "merged.manifest.json"),
		filepath.Join(dir, "merged.series.ndjson")
}

// obsCapture holds the per-cell observability a fresh run produced.
type obsCapture struct {
	reg *obs.Registry
	smp *obs.Sampler
}

// Run executes (or resumes) the shard: replay the STATE file, verify
// cached cells, simulate what is missing through a bounded submission
// window, checkpoint each completion, and — when every owned cell is
// done — emit the shard's NDJSON + manifest by streaming back over the
// cache. Returns ErrIncomplete when MaxFresh stopped the shard early.
func (r *Runner) Run() (Summary, error) {
	sum := Summary{Shard: r.Shard, Shards: r.Shards}
	if r.Spec == nil || r.Dir == "" {
		return sum, fmt.Errorf("sweep: runner needs a spec and a directory")
	}
	if r.Shards < 1 {
		r.Shards = 1
		sum.Shards = 1
	}
	if r.Shard < 0 || r.Shard >= r.Shards {
		return sum, fmt.Errorf("sweep: shard %d out of range [0, %d)", r.Shard, r.Shards)
	}
	fsys := guard.Or(r.FS)
	retry := r.Retry
	if retry == nil {
		retry = guard.NewRetrier(guard.DefaultRetryPolicy(0))
	}
	if err := fsys.MkdirAll(r.Dir, 0o755); err != nil {
		return sum, err
	}
	cacheDir := r.CacheDir
	if cacheDir == "" {
		cacheDir = filepath.Join(r.Dir, "cache")
	}
	var err error
	if r.cache, err = OpenCacheOn(fsys, retry, cacheDir); err != nil {
		return sum, err
	}
	state, done, _, err := OpenStateOn(fsys, retry, r.statePath(), r.Spec.Digest(), r.Shard, r.Shards)
	if err != nil {
		return sum, err
	}
	defer state.Close()

	sched := r.Pool
	if sched == nil {
		sched = pool.New(0)
	}

	// Lifecycle events: every emission happens on Run's goroutine, so the
	// progress counters need no locking. The ETA is the mean fresh-cell
	// wall time projected over the unsettled remainder — advisory only.
	total := r.Spec.ShardSize(r.Shard, r.Shards)
	var (
		processed int   // cells settled (replayed, adopted, finished, poisoned)
		freshDone int   // fresh cells finished OK
		freshDur  int64 // summed wall time of those, ns
	)
	emit := func(ev obs.Event) {
		if r.OnEvent == nil {
			return
		}
		ev.Done = processed
		ev.Total = total
		if ev.EtaNS == 0 && freshDone > 0 && processed < total {
			ev.EtaNS = freshDur / int64(freshDone) * int64(total-processed)
		}
		r.OnEvent(ev)
	}
	emit(obs.Event{Type: obs.EventShardStart, Key: r.Spec.Digest()})

	// Per-key observability captures for fresh runs: the Obs hook fires
	// once per executed simulation; memoized duplicates share the entry.
	var (
		obsMu   sync.Mutex
		obsByKy = map[string]*obsCapture{}
	)
	hook := func(c core.Cell, m *machine.Machine) {
		if r.Sabotage != nil && r.Sabotage(c) {
			panic(fmt.Sprintf("sweep: sabotaged cell %s", c.Label()))
		}
		oc := &obsCapture{reg: obs.NewRegistry()}
		m.Observe(oc.reg, nil)
		liveRun := fmt.Sprintf("%s seed=%d", c.Label(), c.Cfg.Seed)
		if r.Spec.SeriesInterval > 0 {
			oc.smp = obs.NewSampler(oc.reg, r.Spec.SeriesInterval, 0)
			if r.Live != nil {
				// A published view rides the record sampler without
				// touching its exported values.
				r.Live.Add(oc.smp.Publish(liveRun))
			}
			m.StartSampler(oc.smp)
		} else if r.Live != nil {
			// No recorded series: attach a live-only sampler. It is never
			// exported, so the cell's cache record — and with it every
			// artifact digest — is exactly what an unobserved run writes.
			iv := r.LiveInterval
			if iv <= 0 {
				iv = DefaultLiveInterval
			}
			live := obs.NewSampler(oc.reg, iv, 0)
			r.Live.Add(live.Publish(liveRun))
			m.StartSampler(live)
		}
		obsMu.Lock()
		obsByKy[c.Key()] = oc
		obsMu.Unlock()
	}

	// Bounded submission window: enough in-flight cells to keep the
	// pool busy without materializing a million futures.
	window := 4 * sched.Workers()
	if window < 16 {
		window = 16
	}
	type pending struct {
		fut   *pool.Future
		cell  core.Cell
		probe *sim.Progress
		start time.Time
		idx   int
	}
	var inflight []pending
	freshBudget := r.MaxFresh
	capped := false

	// poison quarantines one cell: its STATE record becomes a poison
	// line instead of crashing (or hard-failing) the shard, and the
	// remaining cells keep going.
	poison := func(p pending, reason string) error {
		sum.Poisoned++
		processed++
		obsMu.Lock()
		delete(obsByKy, p.cell.Key())
		obsMu.Unlock()
		if r.OnPoison != nil {
			r.OnPoison(p.cell, reason)
		}
		emit(obs.Event{Type: obs.EventCellPoisoned, Cell: p.cell.Label(), Idx: p.idx, Reason: reason})
		return state.AppendPoison(p.cell.Key(), reason, time.Since(p.start).Nanoseconds())
	}

	finish := func(p pending) error {
		if r.Guard.Enabled() {
			// Supervised wait: the watchdog polls the future, tracks
			// simulated-time progress through the probe, and aborts a
			// cell that blows its budget or stops advancing. A wedged
			// cell (ignored the abort past the grace period) is
			// abandoned, never joined — its goroutine and pool slot
			// leak, but its STATE and cache are untouched, so a resume
			// retries it cleanly.
			var probe guard.Prober
			if p.probe != nil {
				probe = p.probe
			}
			verdict := r.Guard.Supervise(func(d time.Duration) bool {
				_, _, ok := p.fut.WaitTimeout(d)
				return ok
			}, probe)
			if verdict == guard.VerdictWedged {
				return poison(p, verdict.String())
			}
			if verdict != guard.VerdictOK {
				p.fut.Wait() // completed within grace: drain the abort error
				return poison(p, verdict.String())
			}
		}
		res, err := p.fut.Wait()
		if err != nil {
			var perr *pool.PanicError
			if errors.As(err, &perr) {
				return poison(p, "panic")
			}
			var aerr *sim.AbortError
			if errors.As(err, &aerr) {
				return poison(p, aerr.Reason)
			}
			return fmt.Errorf("sweep: cell %s: %w", p.cell.Label(), err)
		}
		key := p.cell.Key()
		obsMu.Lock()
		oc := obsByKy[key]
		delete(obsByKy, key)
		obsMu.Unlock()
		var snap obs.Snapshot
		var series []obs.SeriesData
		if oc != nil {
			snap = oc.reg.Snapshot()
			series = oc.smp.Export("")
		}
		e := &Entry{Record: NewRecord(p.cell, res, snap, series),
			DurationNS: time.Since(p.start).Nanoseconds()}
		if err := r.cache.Put(e); err != nil {
			return err
		}
		if err := state.Append(StateRec{Key: key, Digest: e.Digest, DurationNS: e.DurationNS}); err != nil {
			return err
		}
		processed++
		freshDone++
		freshDur += e.DurationNS
		emit(obs.Event{Type: obs.EventCellDone, Cell: p.cell.Label(), Idx: p.idx, DurationNS: e.DurationNS})
		return nil
	}

	err = r.Spec.EachShardCell(r.Shard, r.Shards, func(idx int, c core.Cell) error {
		sum.Cells++
		key := c.Key()
		if rec, ok := done[key]; ok {
			if rec.Status == StatusPoison {
				// A quarantined cell: skipped (the shard will report
				// ErrPoisoned) unless this is a retry pass, in which
				// case it falls through to a fresh submission and a
				// new "ok" record supersedes the poison line.
				if !r.RetryPoison {
					sum.Poisoned++
					processed++
					emit(obs.Event{Type: obs.EventCellPoisoned, Cell: c.Label(), Idx: idx, Reason: "quarantined"})
					return nil
				}
				sum.PoisonRetried++
			} else if e, ok := r.cache.Get(key); ok && e.Digest == rec.Digest {
				// STATE says done — but the record is only trusted when
				// the cache entry is present, digest-verified, and
				// matches the STATE digest; anything else re-runs the
				// cell.
				sum.FromState++
				processed++
				emit(obs.Event{Type: obs.EventCellState, Cell: c.Label(), Idx: idx})
				return nil
			}
		} else if e, ok := r.cache.Get(key); ok {
			// No STATE record, but a verified cache entry (an earlier
			// sweep, or a killed run's completed-but-unrecorded cell):
			// adopt it into the STATE file.
			sum.FromCache++
			if err := state.Append(StateRec{Key: key, Digest: e.Digest, DurationNS: e.DurationNS}); err != nil {
				return err
			}
			processed++
			emit(obs.Event{Type: obs.EventCellCache, Cell: c.Label(), Idx: idx})
			return nil
		}
		if freshBudget == 0 && r.MaxFresh > 0 {
			capped = true
			return nil
		}
		if r.Draining != nil && r.Draining() {
			// Graceful drain: stop admitting cells. In-flight cells
			// finish and checkpoint below, then Run reports
			// ErrIncomplete so the next invocation resumes.
			capped = true
			return nil
		}
		c.Par = r.Par
		c.Pdes = r.Pdes
		c.Obs = hook
		var probe *sim.Progress
		if r.Guard.Enabled() {
			// One probe per submission; the machine attaches it only on
			// serial cells (PDES shard groups have no mid-window
			// teardown), and it is excluded from the cell key.
			probe = &sim.Progress{Every: sim.DefaultProbeEvery}
			c.Probe = probe
		}
		fut, fresh := sched.Submit(c)
		if fresh {
			if r.Progress != nil {
				r.Progress(c.Label())
			}
		}
		sum.Fresh++
		if r.MaxFresh > 0 {
			freshBudget--
		}
		emit(obs.Event{Type: obs.EventCellStart, Cell: c.Label(), Idx: idx})
		inflight = append(inflight, pending{fut: fut, cell: c, probe: probe, start: time.Now(), idx: idx})
		if len(inflight) >= window {
			if err := finish(inflight[0]); err != nil {
				return err
			}
			inflight = inflight[1:]
		}
		return nil
	})
	if err != nil {
		return sum, err
	}
	for _, p := range inflight {
		if err := finish(p); err != nil {
			return sum, err
		}
	}
	if capped {
		emit(obs.Event{Type: obs.EventShardDone, Key: r.Spec.Digest(), Reason: "incomplete"})
		return sum, ErrIncomplete
	}
	sum.Done = true
	if sum.Poisoned > 0 {
		// Every owned cell has a STATE record, but quarantined cells
		// have no results: the shard cannot emit outputs yet.
		emit(obs.Event{Type: obs.EventShardDone, Key: r.Spec.Digest(), Reason: "poisoned"})
		return sum, ErrPoisoned
	}
	if err := r.emitShardOutputs(fsys, retry); err != nil {
		return sum, err
	}
	emit(obs.Event{Type: obs.EventShardDone, Key: r.Spec.Digest(), Reason: "complete"})
	return sum, nil
}

// emitShardOutputs streams the shard's cells back out of the cache into
// the shard NDJSON (ascending grid index) and the shard manifest
// (merged metrics, digest over the NDJSON bytes). Writes ride the
// retry budget beneath the digest, so a retried short write cannot
// corrupt the digest over the file's actual bytes.
func (r *Runner) emitShardOutputs(fsys guard.FS, retry *guard.Retrier) error {
	f, err := fsys.Create(r.ndjsonPath())
	if err != nil {
		return err
	}
	dw := obs.NewDigestWriter(&guard.RetryWriter{W: f, R: retry})
	enc := json.NewEncoder(dw)
	var merged obs.Snapshot
	cells := 0
	start := time.Now()
	err = r.Spec.EachShardCell(r.Shard, r.Shards, func(idx int, c core.Cell) error {
		e, ok := r.cache.Get(c.Key())
		if !ok {
			return fmt.Errorf("sweep: cell %d (%s) missing from cache at emit time", idx, c.Label())
		}
		cells++
		merged = merged.Merge(e.Metrics)
		return enc.Encode(&Line{Idx: idx, Record: e.Record})
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	man, err := r.sweepManifest(cells, merged, dw.Sum())
	if err != nil {
		return err
	}
	man.WallNS = time.Since(start).Nanoseconds()
	man.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	return man.WriteFile(r.manifestPath())
}

// sweepManifest builds the common manifest shell for shard and merged
// outputs.
func (r *Runner) sweepManifest(cells int, merged obs.Snapshot, digest string) (*obs.Manifest, error) {
	return sweepManifest(r.Spec, fmt.Sprintf("%d/%d", r.Shard, r.Shards), cells, merged, digest)
}

func sweepManifest(spec *Spec, shard string, cells int, merged obs.Snapshot, digest string) (*obs.Manifest, error) {
	params, err := json.Marshal(spec.BaseConfig())
	if err != nil {
		return nil, err
	}
	return &obs.Manifest{
		Tool:    "nwsweep",
		Seed:    spec.Seeds[0],
		Runs:    cells,
		Spec:    spec.Digest(),
		Shard:   shard,
		Params:  params,
		Metrics: merged,
		Digest:  digest,
	}, nil
}

// Merge streams the shard outputs of a completed sweep into the merged
// artifacts: one NDJSON with every cell record in grid order, one
// manifest whose metrics are the shard manifests folded together and
// whose digest pins the merged NDJSON bytes, and (when the spec samples
// series) one merged series file. Every cell's identity and digest is
// re-verified against the spec during the merge, so a missing,
// duplicated, or corrupted shard output fails loudly. The merged
// manifest and NDJSON are wall-clock-free: two sweeps of the same grid
// — interrupted or not, whatever the shard count — produce byte-
// identical merged artifacts.
//
// The summary table (per-application cell counts and execution-time
// rollups) is written to out.
func Merge(spec *Spec, dir string, shards int, out io.Writer) (int, error) {
	return MergeOn(nil, nil, spec, dir, shards, out)
}

// MergeOn is Merge through an explicit filesystem and retry budget:
// shard reads and merged writes go through fsys (nil: the real OS)
// with transient faults retried under retry (nil: one attempt), so an
// EINTR blip mid-merge degrades instead of failing the whole merge.
func MergeOn(fsys guard.FS, retry *guard.Retrier, spec *Spec, dir string, shards int, out io.Writer) (int, error) {
	fsys = guard.Or(fsys)
	if shards < 1 {
		shards = 1
	}
	type shardIn struct {
		f   guard.File
		dec *json.Decoder
	}
	ins := make([]*shardIn, shards)
	defer func() {
		for _, in := range ins {
			if in != nil {
				in.f.Close()
			}
		}
	}()
	var mergedSnap obs.Snapshot
	for i := 0; i < shards; i++ {
		base := filepath.Join(dir, fmt.Sprintf("shard-%dof%d", i, shards))
		f, err := fsys.Open(base + ".ndjson")
		if err != nil {
			return 0, fmt.Errorf("sweep: shard %d output missing (run the shard to completion first): %w", i, err)
		}
		ins[i] = &shardIn{f: f, dec: json.NewDecoder(&guard.RetryReader{Rd: f, R: retry})}
		mf, err := fsys.Open(base + ".manifest.json")
		if err != nil {
			return 0, err
		}
		man, err := obs.ReadManifest(&guard.RetryReader{Rd: mf, R: retry})
		mf.Close()
		if err != nil {
			return 0, err
		}
		if man.Spec != spec.Digest() {
			return 0, fmt.Errorf("sweep: shard %d manifest belongs to spec %.12s…, want %.12s…", i, man.Spec, spec.Digest())
		}
		mergedSnap = mergedSnap.Merge(man.Metrics)
	}

	ndjsonPath, manifestPath, seriesPath := MergedPaths(dir)
	f, err := fsys.Create(ndjsonPath)
	if err != nil {
		return 0, err
	}
	dw := obs.NewDigestWriter(&guard.RetryWriter{W: f, R: retry})
	enc := json.NewEncoder(dw)
	agg := make(map[string]*AppAggregate)
	seriesByName := make(map[string]obs.SeriesData)
	cells := 0
	err = spec.EachCell(func(idx int, c core.Cell) error {
		in := ins[ShardOf(idx, shards)]
		var line Line
		if err := in.dec.Decode(&line); err != nil {
			return fmt.Errorf("sweep: shard %d output ended early at cell %d: %w", ShardOf(idx, shards), idx, err)
		}
		if line.Idx != idx || line.Key != c.Key() {
			return fmt.Errorf("sweep: shard %d output out of order: got cell %d key %.12s…, want cell %d key %.12s…",
				ShardOf(idx, shards), line.Idx, line.Key, idx, c.Key())
		}
		if !line.Verify() {
			return fmt.Errorf("sweep: cell %d (%s) fails digest verification in shard output", idx, line.Label)
		}
		cells++
		aggregateInto(agg, line.App, line.Result.ExecTime)
		for _, sd := range line.Series {
			if have, ok := seriesByName[sd.Name]; ok {
				seriesByName[sd.Name] = have.Merge(sd)
			} else {
				sd.Run = ""
				seriesByName[sd.Name] = sd
			}
		}
		// Re-encode rather than copying raw bytes: the merged file's
		// bytes are then canonical regardless of shard file formatting.
		stripped := line
		stripped.Series = nil // merged series live in their own artifact
		return enc.Encode(&stripped)
	})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return cells, err
	}
	for _, in := range ins {
		if in.dec.More() {
			return cells, fmt.Errorf("sweep: a shard output has extra cells beyond the grid")
		}
	}

	// The shard tag is a constant "merged" — not "merged/<n>" — so the
	// merged manifest is byte-identical whatever the shard count was.
	man, err := sweepManifest(spec, "merged", cells, mergedSnap, dw.Sum())
	if err != nil {
		return cells, err
	}
	if err := man.WriteFile(manifestPath); err != nil {
		return cells, err
	}

	if spec.SeriesInterval > 0 && len(seriesByName) > 0 {
		names := make([]string, 0, len(seriesByName))
		for name := range seriesByName {
			names = append(names, name)
		}
		sort.Strings(names)
		series := make([]obs.SeriesData, 0, len(names))
		for _, name := range names {
			series = append(series, seriesByName[name])
		}
		sf, err := fsys.Create(seriesPath)
		if err != nil {
			return cells, err
		}
		err = obs.WriteSeriesNDJSON(&guard.RetryWriter{W: sf, R: retry}, series)
		if cerr := sf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return cells, err
		}
	}

	if out != nil {
		name := spec.Name
		if name == "" {
			name = "sweep"
		}
		t := &stats.Table{
			// No shard count in the title: the summary, like the merged
			// artifacts, must not depend on how the sweep was partitioned.
			Title:   fmt.Sprintf("Sweep %s (%.12s…): %d cells", name, spec.Digest(), cells),
			Headers: []string{"Application", "Cells", "MeanExec (Mpc)", "MinExec (Mpc)", "MaxExec (Mpc)"},
		}
		for _, a := range sortedAggregates(agg) {
			t.AddRow(a.App, fmt.Sprintf("%d", a.Cells),
				stats.FmtF(a.MeanExec/1e6, 2),
				stats.FmtF(float64(a.MinExec)/1e6, 2),
				stats.FmtF(float64(a.MaxExec)/1e6, 2))
		}
		fmt.Fprintln(out, t)
	}
	return cells, nil
}

// ReadLines streams a shard or merged NDJSON file, calling fn per cell
// line (nwreport's sweep table input).
func ReadLines(rd io.Reader, fn func(Line) error) error {
	return readLines(rd, func(b []byte) error {
		var line Line
		if err := json.Unmarshal(b, &line); err != nil {
			return fmt.Errorf("sweep: decoding cell line: %w", err)
		}
		return fn(line)
	})
}
