package core

import (
	"testing"
)

// fastCfg shrinks the machine and workload for quick end-to-end tests.
func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	cfg.MemPerNode = 16 * cfg.PageSize
	return cfg
}

func TestRunKnownApp(t *testing.T) {
	res, err := Run("sor", NWCache, Naive, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "sor" || res.Kind != NWCache || res.Mode != "naive" {
		t.Fatalf("result identity %q/%v/%q", res.App, res.Kind, res.Mode)
	}
	if res.ExecTime <= 0 {
		t.Fatal("no execution time")
	}
}

func TestRunUnknownAppErrors(t *testing.T) {
	if _, err := Run("nosuch", Standard, Naive, fastCfg()); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunInvalidConfigErrors(t *testing.T) {
	cfg := fastCfg()
	cfg.MinFreeFrames = 0
	if _, err := Run("sor", Standard, Naive, cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestAppsListsSeven(t *testing.T) {
	apps := Apps()
	if len(apps) != 7 {
		t.Fatalf("%d apps, want 7", len(apps))
	}
	for _, name := range apps {
		if _, err := NewProgram(name, fastCfg()); err != nil {
			t.Fatalf("NewProgram(%q): %v", name, err)
		}
	}
}

func TestPaperMinFree(t *testing.T) {
	cases := []struct {
		kind Kind
		mode PrefetchMode
		want int
	}{
		{Standard, Optimal, 12},
		{Standard, Naive, 4},
		{NWCache, Optimal, 2},
		{NWCache, Naive, 2},
	}
	for _, c := range cases {
		if got := PaperMinFree(c.kind, c.mode); got != c.want {
			t.Errorf("PaperMinFree(%v,%v) = %d, want %d", c.kind, c.mode, got, c.want)
		}
		cfg := ApplyPaperMinFree(DefaultConfig(), c.kind, c.mode)
		if cfg.MinFreeFrames != c.want {
			t.Errorf("ApplyPaperMinFree(%v,%v) left %d", c.kind, c.mode, cfg.MinFreeFrames)
		}
	}
}

func TestRunDrainPolicyBothSettings(t *testing.T) {
	cfg := fastCfg()
	for _, rr := range []bool{false, true} {
		res, err := RunDrainPolicy("sor", Naive, cfg, rr)
		if err != nil {
			t.Fatalf("rr=%v: %v", rr, err)
		}
		if res.ExecTime <= 0 {
			t.Fatalf("rr=%v: empty result", rr)
		}
	}
}

func TestNewMachineExposesSubstrates(t *testing.T) {
	m, err := NewMachine(fastCfg(), NWCache, Optimal)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ring == nil {
		t.Fatal("NWCache machine without ring")
	}
	disks := 0
	for _, d := range m.Disks {
		if d != nil {
			disks++
		}
	}
	if disks != fastCfg().IONodes {
		t.Fatalf("%d disks, want %d", disks, fastCfg().IONodes)
	}
	std, err := NewMachine(fastCfg(), Standard, Optimal)
	if err != nil {
		t.Fatal(err)
	}
	if std.Ring != nil {
		t.Fatal("standard machine grew a ring")
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	cfg := fastCfg()
	agg, err := RunSeeds("radix", NWCache, Naive, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != 3 {
		t.Fatalf("runs %d", agg.Runs)
	}
	if agg.MinExec <= 0 || agg.MaxExec < agg.MinExec {
		t.Fatalf("exec range [%d,%d]", agg.MinExec, agg.MaxExec)
	}
	if agg.MeanExec < float64(agg.MinExec) || agg.MeanExec > float64(agg.MaxExec) {
		t.Fatalf("mean %f outside [%d,%d]", agg.MeanExec, agg.MinExec, agg.MaxExec)
	}
	if agg.Spread() < 0 {
		t.Fatalf("spread %f", agg.Spread())
	}
}

func TestRunSeedsSeedInvariantApp(t *testing.T) {
	// SOR has no randomized pattern: all seeds give identical runs.
	agg, err := RunSeeds("sor", Standard, Naive, fastCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.MinExec != agg.MaxExec {
		t.Fatalf("sor varied across seeds: [%d,%d]", agg.MinExec, agg.MaxExec)
	}
	if agg.Spread() != 0 {
		t.Fatalf("spread %f", agg.Spread())
	}
}

func TestRunSeedsPropagatesErrors(t *testing.T) {
	if _, err := RunSeeds("nosuch", Standard, Naive, fastCfg(), 2); err == nil {
		t.Fatal("unknown app accepted")
	}
}
