// Package disk models a disk drive and its controller as described in the
// paper's base system (§3.1):
//
//   - a small controller cache holding whole pages (16 KB = 4 slots by
//     default), in which writes are given preference over prefetches;
//   - page read requests served from the cache (hit) or the media (miss),
//     with two prefetching extremes: Optimal (every read is satisfied from
//     the cache, media reads happen in the background) and Naive (on a
//     miss the controller fills the remaining cache slots with the pages
//     sequentially following the missed one);
//   - swap-out writes answered with ACK when the page fits in the cache and
//     NACK otherwise; NACKs are recorded in a FIFO and an OK message is
//     sent when room appears, prompting the node to resend the page;
//   - dirty pages written back to the media with write combining: dirty
//     slots holding consecutive disk blocks are written in a single access
//     (one seek + rotation, n transfers).
//
// The mechanism (arm + platter) is a single FCFS resource; seek time is
// proportional to the distance from the current head position, scaled to
// the in-use block span.
package disk

import (
	"fmt"

	"nwcache/internal/fault"
	"nwcache/internal/obs"
	"nwcache/internal/param"
	"nwcache/internal/sim"
	"nwcache/internal/stats"
)

// PageID is a virtual page number (the paper equates pages and disk
// blocks; we keep both, related by the pfs layout).
type PageID = int64

// PrefetchMode selects the controller's prefetching policy.
type PrefetchMode int

// Prefetching policies. Naive and Optimal are the paper's two extremes
// (§3.1); Streamed is the repository's extension: per-requester
// sequential-stream detection with bounded read-ahead, the kind of
// "realistic and sophisticated" technique the paper expects to land
// between its extremes (§5, Discussion).
const (
	Naive PrefetchMode = iota
	Optimal
	Streamed
)

// String implements fmt.Stringer.
func (m PrefetchMode) String() string {
	switch m {
	case Optimal:
		return "optimal"
	case Streamed:
		return "streamed"
	}
	return "naive"
}

// WriteStatus is the controller's immediate answer to a swap-out write.
type WriteStatus int

// Write outcomes.
const (
	ACK  WriteStatus = iota // page accepted into the controller cache
	NACK                    // cache full of swap-outs; OK will follow
)

// slot is one page frame of the controller cache.
type slot struct {
	valid      bool
	page       PageID
	block      int64
	dirty      bool   // swap-out not yet on media
	busy       bool   // media write in flight for this slot's data
	prefetched bool   // filled by prefetch (clean, evictable by writes)
	lastUse    int64  // for clean-slot LRU
	seq        uint64 // arrival order of dirty data (write-back order)
}

// nackEntry records a rejected swap-out awaiting an OK.
type nackEntry struct {
	Node int
	Page PageID
}

// Disk is one drive + controller.
type Disk struct {
	e    *sim.Engine
	name string

	mode         PrefetchMode
	slots        []slot
	seqCounter   uint64
	useCounter   int64
	arm          armSched      // the mechanism
	ctrl         *sim.Resource // controller firmware occupancy
	ctrlOverhead int64
	minSeek      int64
	maxSeek      int64
	rot          int64
	pageXfer     int64 // media transfer time for one page
	headPos      int64
	maxBlockSeen int64
	wbDwell      int64

	// pendingPF tracks blocks with an in-flight sequential prefetch: a
	// read request for one of them waits for the fill instead of issuing a
	// duplicate media access, and counts as a controller-cache hit.
	pendingPF     map[int64]bool
	pendingPFDone *sim.Cond

	// streamHead tracks, per requesting node, the last block read — the
	// Streamed mode's stream detector. Indexed by node id (zero value
	// matches the "never seen" semantics of the former map).
	streamHead  []int64
	streamDepth int

	// dcd, when non-nil, is the Disk Caching Disk log interposed between
	// the controller cache and the data mechanism (§6 baseline).
	dcd *dcdLog

	nackFIFO  []nackEntry
	nackBatch []nackEntry // scratch for releaseNACKs

	// Write-back scratch buffers, reused across writebackLoop iterations so
	// the steady-state drain allocates nothing.
	wbDirty []blockIdx
	wbGroup []int
	wbSeqs  []uint64
	wbBlks  []int64

	// NotifyOK is invoked when controller-cache room appears for a
	// previously NACKed write; the machine layer turns it into an OK
	// message to the node. Must be set before use if writes can NACK.
	NotifyOK func(node int, page PageID)
	// OnRoom, if set, fires after each completed media write-back, i.e.
	// whenever cache room may have appeared (used to kick the NWCache
	// interface's drain loop).
	OnRoom func()

	wbKick *sim.Cond // wakes the write-back daemon

	// Statistics.
	Reads      uint64
	ReadHits   uint64
	Writes     uint64
	WritesACK  uint64
	WritesNACK uint64
	Combining  stats.Mean // pages per media write access
	MediaReads uint64
	MediaWrite uint64

	// Observation handles, nil until Observe/SetTrace wire them; the write
	// and write-back paths then pay one nil check each.
	tgDirty *obs.TimeGauge // dirty-slot count over simulated time
	hGroup  *obs.Histogram // write-combining run lengths
	tr      *obs.Trace     // media access spans
	track   int

	// Fault injection (nil = perfect hardware): transient media errors
	// with the controller's retry/backoff firmware, permanent bad-block
	// remaps, and degraded-mode latency windows.
	flt   *fault.Injector
	fltID int // this disk's index in the fault plan's disk= namespace
}

// New constructs a disk and starts its write-back daemon.
func New(e *sim.Engine, name string, cfg param.Config, mode PrefetchMode) *Disk {
	var arm armSched
	if cfg.DiskReadPriority {
		arm = prioArm{sim.NewServer(e, name+".arm")}
	} else {
		arm = fcfsArm{sim.NewResource(e, name+".arm")}
	}
	d := &Disk{
		e:            e,
		name:         name,
		mode:         mode,
		slots:        make([]slot, cfg.DiskCacheSlots()),
		arm:          arm,
		ctrl:         sim.NewResource(e, name+".ctrl"),
		ctrlOverhead: cfg.CtrlOverhead,
		minSeek:      cfg.MinSeek,
		maxSeek:      cfg.MaxSeek,
		rot:          cfg.RotLatency,
		pageXfer:     cfg.PageDiskTime(),
		maxBlockSeen: 1,
		wbDwell:      cfg.WBDwell,
		wbKick:       sim.NewCond(e).Named(name + ".wbKick"),
		pendingPF:    make(map[int64]bool),
		streamHead:   make([]int64, cfg.Nodes),
		streamDepth:  cfg.StreamDepth,
	}
	d.pendingPFDone = sim.NewCond(e).Named(name + ".pfDone")
	if cfg.DCD {
		d.dcd = newDCDLog(e, d, cfg.DCDLogBlocks)
	}
	e.SpawnDaemon(name+".writeback", d.writebackLoop)
	return d
}

// Observe wires the controller's statistics into an obs scope: the
// existing counters as pull-based probes, a simulated-time gauge of
// dirty (unwritten swap-out) slots, and a histogram of write-combining
// run lengths. No-op on a nil scope.
func (d *Disk) Observe(sc *obs.Scope) {
	if sc == nil {
		return
	}
	sc.ProbeCounter("reads", func() int64 { return int64(d.Reads) })
	sc.ProbeCounter("read_hits", func() int64 { return int64(d.ReadHits) })
	sc.ProbeCounter("writes", func() int64 { return int64(d.Writes) })
	sc.ProbeCounter("writes_ack", func() int64 { return int64(d.WritesACK) })
	sc.ProbeCounter("writes_nack", func() int64 { return int64(d.WritesNACK) })
	sc.ProbeCounter("media_reads", func() int64 { return int64(d.MediaReads) })
	sc.ProbeCounter("media_writes", func() int64 { return int64(d.MediaWrite) })
	sc.ProbeCounter("arm_busy_pcycles", func() int64 { return d.ArmBusy() })
	sc.ProbeGauge("pending_nacks", func() int64 { return int64(d.PendingNACKs()) })
	sc.ProbeGauge("dcd_logged", func() int64 { return int64(d.DCDLogged()) })
	d.tgDirty = sc.TimeGauge("dirty_slots")
	d.hGroup = sc.Histogram("wb_group_len")
}

// SetTrace routes media access spans onto track of tr (nil disables).
func (d *Disk) SetTrace(tr *obs.Trace, track int) {
	d.tr, d.track = tr, track
}

// SetFaults attaches a fault injector; id is this disk's index in the
// plan's disk= namespace. A nil injector restores perfect hardware.
func (d *Disk) SetFaults(inj *fault.Injector, id int) {
	d.flt, d.fltID = inj, id
}

// mediaAccess performs one mechanism access of dur pcycles. With a fault
// injector attached it applies the active degraded-mode latency
// multiplier and the transient-error protocol: on an injected error the
// controller retries with exponential backoff up to the plan's budget,
// then gives up (the stale data ages in place; a later pass rewrites it).
func (d *Disk) mediaAccess(p *sim.Proc, pri sim.Priority, dur int64, read bool) {
	if d.flt == nil {
		d.arm.Use(p, pri, dur)
		return
	}
	dur *= d.flt.DegradeMult(d.fltID, p.Now())
	retries, backoff := d.flt.RetrySpec(read)
	for attempt := 0; ; attempt++ {
		d.arm.Use(p, pri, dur)
		var failed bool
		if read {
			failed = d.flt.DiskReadError()
		} else {
			failed = d.flt.DiskWriteError()
		}
		if !failed {
			return
		}
		if attempt >= retries {
			d.flt.NoteGiveUp(read)
			return
		}
		slept := backoff << attempt
		d.flt.NoteRetry(slept)
		p.Sleep(slept)
	}
}

// noteDirty samples the dirty-slot gauge (call after any transition).
func (d *Disk) noteDirty() {
	if d.tgDirty != nil {
		d.tgDirty.Set(d.e.Now(), int64(d.DirtySlots()))
	}
}

// HasDCD reports whether the DCD log disk is attached.
func (d *Disk) HasDCD() bool { return d.dcd != nil }

// DCDLogged returns the number of blocks currently in the DCD log.
func (d *Disk) DCDLogged() int {
	if d.dcd == nil {
		return 0
	}
	return len(d.dcd.fifo)
}

// Mode returns the prefetch mode.
func (d *Disk) Mode() PrefetchMode { return d.mode }

// CacheSlots returns the controller cache capacity in pages.
func (d *Disk) CacheSlots() int { return len(d.slots) }

// seekTime returns the head movement cost from the current position to
// block, proportional to distance over the in-use span.
func (d *Disk) seekTime(block int64) int64 {
	dist := block - d.headPos
	if dist < 0 {
		dist = -dist
	}
	if block > d.maxBlockSeen {
		d.maxBlockSeen = block
	}
	span := d.maxBlockSeen
	if span < 1 {
		span = 1
	}
	if dist > span {
		dist = span
	}
	return d.minSeek + (d.maxSeek-d.minSeek)*dist/span
}

// find returns the slot index caching page, or -1.
func (d *Disk) find(page PageID) int {
	for i := range d.slots {
		if d.slots[i].valid && d.slots[i].page == page {
			return i
		}
	}
	return -1
}

// victim returns the best slot to receive new data: an invalid slot
// first, then the LRU clean (non-dirty, non-busy) slot. The paper's
// "writes are given preference over prefetches" emerges from the dirty
// shield: dirty slots are never evictable, prefetched ones always are.
// Returns -1 if every slot holds a dirty or in-flight page.
func (d *Disk) victim(forWrite bool) int {
	_ = forWrite // reads and writes share the policy; dirty is the shield
	best := -1
	for i := range d.slots {
		s := &d.slots[i]
		if !s.valid {
			return i
		}
		if s.dirty || s.busy {
			continue
		}
		if best == -1 || s.lastUse < d.slots[best].lastUse {
			best = i
		}
	}
	return best
}

// touch refreshes a slot's LRU stamp.
func (d *Disk) touch(i int) {
	d.useCounter++
	d.slots[i].lastUse = d.useCounter
}

// ReadOutcome classifies how a page read was served.
type ReadOutcome int

// Read outcomes.
const (
	Miss        ReadOutcome = iota // dedicated media access
	HitCache                       // satisfied immediately from the controller cache
	HitInflight                    // waited for an in-flight sequential prefetch
)

// Hit reports whether the outcome avoided a dedicated media access.
func (o ReadOutcome) Hit() bool { return o != Miss }

// Read services a page read request from node `from` in the context of p
// (one proc per request; the controller can overlap cache hits with media
// activity). It returns when the page data is available in the controller
// buffer, ready for the caller to move across the I/O bus.
func (d *Disk) Read(p *sim.Proc, from int, page PageID, block int64) ReadOutcome {
	d.Reads++
	d.ctrl.Use(p, d.ctrlOverhead)
	streaming := d.mode == Streamed && d.streamHead[from]+1 == block
	d.streamHead[from] = block
	if i := d.find(page); i >= 0 {
		d.touch(i)
		d.ReadHits++
		if streaming {
			d.extendStream(page, block)
		}
		return HitCache
	}
	if d.mode == Optimal {
		// Idealized prefetching: every request is satisfied from the
		// cache; the media read happened in the background.
		d.ReadHits++
		d.installClean(page, block, false)
		return HitCache
	}
	// A sequential prefetch for this block is already streaming off the
	// media: wait for it rather than issuing a duplicate access.
	if d.pendingPF[block] {
		for d.pendingPF[block] {
			d.pendingPFDone.Wait(p)
		}
		d.ReadHits++
		if streaming {
			d.extendStream(page, block)
		}
		return HitInflight
	}
	// A block still sitting in the DCD log is read from the log mechanism
	// (a random log access, comparable in cost to the data disk — §6).
	if d.dcd != nil && d.dcd.contains(block) {
		d.MediaReads++
		d.dcd.readBlock(p)
		d.installClean(page, block, false)
		return Miss
	}
	// Dedicated media read.
	d.MediaReads++
	mediaBlock := d.flt.RemapBlock(d.fltID, block)
	dur := d.seekTime(mediaBlock) + d.rot + d.pageXfer
	t0 := p.Now()
	d.mediaAccess(p, sim.High, dur, true)
	d.tr.Span(d.track, "disk.read", t0, p.Now())
	d.headPos = mediaBlock
	d.installClean(page, block, false)
	switch d.mode {
	case Naive:
		// Fill the remaining clean slots with sequentially-following
		// pages, whether or not the requester is actually sequential.
		d.spawnSequentialPrefetch(page, block, d.prefetchableSlots())
	case Streamed:
		// Read ahead only for a confirmed sequential stream, and only a
		// bounded window, so random requesters do not trash the cache.
		if streaming {
			d.extendStream(page, block)
		}
	}
	return Miss
}

// extendStream prefetches the Streamed mode's read-ahead window beyond
// block, bounded by streamDepth and the clean slots available.
func (d *Disk) extendStream(page PageID, block int64) {
	n := d.prefetchableSlots()
	if n > d.streamDepth {
		n = d.streamDepth
	}
	// Skip pages already cached or in flight.
	for n > 0 && (d.find(page+1) >= 0 || d.pendingPF[block+1]) {
		page, block = page+1, block+1
		n--
	}
	if n > 0 {
		d.spawnSequentialPrefetch(page, block, n)
	}
}

// prefetchableSlots counts cache slots a prefetch could fill right now:
// invalid slots plus clean slots, reserving the most recently used clean
// slot (the demand page that triggered the prefetch must survive it).
func (d *Disk) prefetchableSlots() int {
	invalid, clean := 0, 0
	for i := range d.slots {
		s := &d.slots[i]
		switch {
		case !s.valid:
			invalid++
		case !s.dirty && !s.busy:
			clean++
		}
	}
	if clean > 0 {
		clean--
	}
	return invalid + clean
}

// installClean places a clean page into the cache if a slot is available;
// silently bypasses the cache otherwise.
func (d *Disk) installClean(page PageID, block int64, prefetched bool) {
	if d.find(page) >= 0 {
		return
	}
	i := d.victim(false)
	if i < 0 {
		return // cache full of dirty swap-outs: serve as bypass
	}
	d.slots[i] = slot{valid: true, page: page, block: block, prefetched: prefetched}
	d.touch(i)
}

// spawnSequentialPrefetch reads the n blocks sequentially following
// `block` into clean cache slots, in the background.
func (d *Disk) spawnSequentialPrefetch(page PageID, block int64, n int) {
	if n <= 0 {
		return
	}
	for k := 1; k <= n; k++ {
		d.pendingPF[block+int64(k)] = true
	}
	d.e.SpawnDaemon(d.name+".prefetch", func(p *sim.Proc) {
		// Head is already at block: sequential read costs transfer only.
		d.mediaAccess(p, sim.High, int64(n)*d.pageXfer, true)
		d.headPos = block + int64(n)
		for k := 1; k <= n; k++ {
			d.installClean(page+int64(k), block+int64(k), true)
			delete(d.pendingPF, block+int64(k))
		}
		d.pendingPFDone.Broadcast()
	})
}

// Write services a swap-out arriving at the controller in the context of
// p. On ACK the page occupies a cache slot and is scheduled for combined
// write-back. On NACK the (node, page) pair is queued; NotifyOK fires when
// room appears.
func (d *Disk) Write(p *sim.Proc, node int, page PageID, block int64) WriteStatus {
	d.Writes++
	d.ctrl.Use(p, d.ctrlOverhead)
	if i := d.find(page); i >= 0 {
		// Overwrite of a page still cached: update in place.
		d.slots[i].dirty = true
		d.slots[i].prefetched = false
		d.seqCounter++
		d.slots[i].seq = d.seqCounter
		d.touch(i)
		d.WritesACK++
		d.noteDirty()
		d.wbKick.Signal()
		return ACK
	}
	i := d.victim(true)
	if i < 0 {
		d.WritesNACK++
		d.nackFIFO = append(d.nackFIFO, nackEntry{Node: node, Page: page})
		return NACK
	}
	d.seqCounter++
	d.slots[i] = slot{valid: true, page: page, block: block, dirty: true, seq: d.seqCounter}
	d.touch(i)
	d.WritesACK++
	d.noteDirty()
	d.wbKick.Signal()
	return ACK
}

// HasWriteRoom reports whether a swap-out write would be ACKed right now.
func (d *Disk) HasWriteRoom() bool { return d.victim(true) >= 0 }

// DirtySlots returns the number of cache slots holding unwritten swap-outs.
func (d *Disk) DirtySlots() int {
	n := 0
	for i := range d.slots {
		if d.slots[i].valid && d.slots[i].dirty {
			n++
		}
	}
	return n
}

// PendingNACKs returns the depth of the NACK FIFO.
func (d *Disk) PendingNACKs() int { return len(d.nackFIFO) }

// MinServiceLatency returns the controller's fixed firmware overhead —
// the minimum pcycles between any request reaching the controller and
// the earliest externally visible response (an ACK/NACK decision, a
// cache hit's data, or the OK that follows a NACK). It is the disk's
// contribution to the PDES lookahead derivation (machine.DeriveLookahead
// composes it with two mesh control transits into the NACK→OK round-trip
// floor).
func (d *Disk) MinServiceLatency() int64 { return d.ctrlOverhead }

// writebackLoop drains dirty slots to the media, combining consecutive
// blocks into single accesses, and releases OKs for NACKed writes as room
// appears.
func (d *Disk) writebackLoop(p *sim.Proc) {
	for {
		group := d.pickWriteGroup()
		if len(group) == 0 {
			d.wbKick.Wait(p)
			// Dwell briefly after waking from idle so a burst of
			// consecutive swap-outs can accumulate and be combined.
			p.Sleep(d.wbDwell)
			continue
		}
		// Mark the group busy: the slots cannot be evicted or selected for
		// another write-back while their data streams to the media, though
		// reads may still hit them and a re-write to the same page bumps
		// the sequence number (handled below).
		seqs := d.wbSeqs[:0]
		for _, i := range group {
			d.slots[i].busy = true
			seqs = append(seqs, d.slots[i].seq)
		}
		d.wbSeqs = seqs[:0]
		d.hGroup.Observe(int64(len(group)))
		if d.dcd != nil {
			// DCD: destage to the log disk with a cheap sequential write;
			// the destage daemon moves it to the data disk later. Block
			// when the log is full (the DCD's own back-pressure).
			for !d.dcd.hasRoom(len(group)) {
				d.dcd.room.Wait(p)
			}
			blocks := d.wbBlks[:0]
			for _, i := range group {
				blocks = append(blocks, d.slots[i].block)
			}
			d.wbBlks = blocks[:0]
			d.dcd.appendBatch(p, blocks)
		} else {
			start := d.flt.RemapBlock(d.fltID, d.slots[group[0]].block)
			dur := d.seekTime(start) + d.rot + int64(len(group))*d.pageXfer
			t0 := p.Now()
			d.mediaAccess(p, sim.Low, dur, false) // background write-back: low priority
			d.tr.Span(d.track, "disk.write", t0, p.Now())
			d.headPos = start + int64(len(group))
			d.MediaWrite++
			d.Combining.Add(float64(len(group)))
		}
		for k, i := range group {
			d.slots[i].busy = false
			if d.slots[i].seq == seqs[k] {
				d.slots[i].dirty = false // clean; still cached for reads
			}
			// else: overwritten mid-flight, stays dirty for another pass.
		}
		d.noteDirty()
		d.releaseNACKs()
		if d.OnRoom != nil {
			d.OnRoom()
		}
	}
}

// blockIdx pairs a cache slot index with its disk block (write-back sort).
type blockIdx struct {
	idx   int
	block int64
}

// pickWriteGroup chooses the dirty slots for the next media write: the
// oldest dirty slot plus every dirty slot whose block is consecutive with
// it (in either direction), written in one access. Returned indices are in
// ascending block order. The result aliases a scratch buffer valid until
// the next call.
func (d *Disk) pickWriteGroup() []int {
	oldest := -1
	for i := range d.slots {
		s := &d.slots[i]
		if s.valid && s.dirty && !s.busy && (oldest == -1 || s.seq < d.slots[oldest].seq) {
			oldest = i
		}
	}
	if oldest == -1 {
		return nil
	}
	// Collect dirty slots in ascending block order (insertion sort: the
	// controller cache holds a handful of slots).
	dirty := d.wbDirty[:0]
	for i := range d.slots {
		if d.slots[i].valid && d.slots[i].dirty && !d.slots[i].busy {
			x := blockIdx{i, d.slots[i].block}
			k := len(dirty)
			dirty = append(dirty, x)
			for k > 0 && dirty[k-1].block > x.block {
				dirty[k] = dirty[k-1]
				k--
			}
			dirty[k] = x
		}
	}
	d.wbDirty = dirty[:0]
	// Find the maximal consecutive run containing `oldest`.
	pos := -1
	for k, x := range dirty {
		if x.idx == oldest {
			pos = k
			break
		}
	}
	lo, hi := pos, pos
	for lo > 0 && dirty[lo-1].block == dirty[lo].block-1 {
		lo--
	}
	for hi+1 < len(dirty) && dirty[hi+1].block == dirty[hi].block+1 {
		hi++
	}
	group := d.wbGroup[:0]
	for k := lo; k <= hi; k++ {
		group = append(group, dirty[k].idx)
	}
	d.wbGroup = group[:0]
	return group
}

// releaseNACKs sends OK for as many queued NACKs as there are slots able
// to receive a write, in FIFO order. Sending an OK does not reserve the
// slot (just as in the paper's protocol); a resent page that loses the
// race is simply NACKed again.
func (d *Disk) releaseNACKs() {
	if len(d.nackFIFO) == 0 {
		return
	}
	free := 0
	for i := range d.slots {
		s := &d.slots[i]
		if !s.valid || (!s.dirty && !s.busy) {
			free++
		}
	}
	n := free
	if n > len(d.nackFIFO) {
		n = len(d.nackFIFO)
	}
	if n == 0 {
		return
	}
	batch := append(d.nackBatch[:0], d.nackFIFO[:n]...)
	d.nackBatch = batch[:0]
	d.nackFIFO = append(d.nackFIFO[:0], d.nackFIFO[n:]...)
	if d.NotifyOK == nil {
		panic(fmt.Sprintf("disk %s: NACKed writes but NotifyOK unset", d.name))
	}
	for _, en := range batch {
		d.NotifyOK(en.Node, en.Page)
	}
}

// Invalidate drops a clean cached copy of page (used when a victim read
// from the ring supersedes the disk copy path). Dirty slots are kept: the
// data must still reach the media. Returns true if a slot was dropped.
func (d *Disk) Invalidate(page PageID) bool {
	i := d.find(page)
	if i < 0 || d.slots[i].dirty {
		return false
	}
	d.slots[i] = slot{}
	return true
}

// ArmBusy exposes the mechanism's cumulative busy time.
func (d *Disk) ArmBusy() int64 { return d.arm.BusyTime() }
