package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// sampleReg builds a registry with one metric of each sampled kind and
// returns the handles for driving them.
func sampleReg() (*Registry, *Counter, *Gauge, *Histogram) {
	reg := NewRegistry()
	root := reg.Root()
	c := root.Scope("a").Counter("events")
	g := root.Scope("a").Gauge("level")
	h := root.Scope("b").Histogram("lat")
	return reg, c, g, h
}

func TestSamplerRecordsColumns(t *testing.T) {
	reg, c, g, h := sampleReg()
	s := NewSampler(reg, 10, 0)
	for i := int64(1); i <= 3; i++ {
		c.Add(uint64(i))
		g.Set(i * 5)
		h.Observe(i * 100)
		s.Tick(i * 10)
	}
	if s.Len() != 3 {
		t.Fatalf("Len %d, want 3", s.Len())
	}
	series := s.Export("run1")
	// a.events, a.level, b.lat.count, b.lat.p50, b.lat.p99 — sorted.
	wantNames := []string{"a.events", "a.level", "b.lat.count", "b.lat.p50", "b.lat.p99"}
	if len(series) != len(wantNames) {
		t.Fatalf("exported %d series, want %d", len(series), len(wantNames))
	}
	for i, sd := range series {
		if sd.Name != wantNames[i] {
			t.Fatalf("series[%d] = %q, want %q", i, sd.Name, wantNames[i])
		}
		if sd.Run != "run1" {
			t.Fatalf("series run %q", sd.Run)
		}
		if len(sd.Points) != 3 {
			t.Fatalf("%s: %d points, want 3", sd.Name, len(sd.Points))
		}
	}
	ev := series[0] // a.events: cumulative 1, 3, 6
	for i, want := range []float64{1, 3, 6} {
		if ev.Points[i][0] != float64((i+1)*10) || ev.Points[i][1] != want {
			t.Fatalf("a.events points %v", ev.Points)
		}
	}
	lvl := series[1] // a.level: 5, 10, 15
	for i, want := range []float64{5, 10, 15} {
		if lvl.Points[i][1] != want {
			t.Fatalf("a.level points %v", lvl.Points)
		}
	}
	if got := series[2].Points[2][1]; got != 3 {
		t.Fatalf("b.lat.count last = %v, want 3", got)
	}
}

// A repeated or out-of-order tick time is ignored — the final flush
// after Run may land on a boundary the engine already ticked.
func TestSamplerIgnoresNonMonotoneTicks(t *testing.T) {
	reg, c, _, _ := sampleReg()
	s := NewSampler(reg, 10, 0)
	c.Inc()
	s.Tick(10)
	s.Tick(10)
	s.Tick(5)
	if s.Len() != 1 {
		t.Fatalf("Len %d, want 1", s.Len())
	}
}

// When the buffers fill, the sampler compacts pairwise and keeps
// covering the whole run: first and last timestamps survive within one
// stride, and the point count stays bounded by cap.
func TestSamplerCompaction(t *testing.T) {
	reg, c, _, _ := sampleReg()
	s := NewSampler(reg, 1, 8)
	const total = 100
	for i := int64(1); i <= total; i++ {
		c.Inc()
		s.Tick(i)
	}
	if s.Len() > 8 {
		t.Fatalf("Len %d exceeds cap 8", s.Len())
	}
	sd := s.Export("")[0] // a.events
	if len(sd.Points) == 0 {
		t.Fatal("no points after compaction")
	}
	// Whole-run coverage at coarser resolution: with cap 8 and 100 ticks
	// the stride settles at 16, so the first and last surviving points
	// must sit within one stride of the run's ends (a plain ring would
	// have lost the head entirely).
	first, last := sd.Points[0], sd.Points[len(sd.Points)-1]
	if first[0] > 16 {
		t.Fatalf("first timestamp %v — head lost to compaction", first[0])
	}
	if last[0] < total-16 {
		t.Fatalf("last timestamp %v, want within 16 of %d — tail lost", last[0], total)
	}
	// Counter values stay monotone through pairwise averaging.
	for i := 1; i < len(sd.Points); i++ {
		if sd.Points[i][1] < sd.Points[i-1][1] {
			t.Fatalf("counter series not monotone: %v", sd.Points)
		}
		if sd.Points[i][0] <= sd.Points[i-1][0] {
			t.Fatalf("timestamps not increasing: %v", sd.Points)
		}
	}
}

// Two identical runs must produce byte-identical exports (determinism is
// the whole point of sampling on the virtual clock).
func TestSamplerDeterministic(t *testing.T) {
	run := func() []byte {
		reg, c, g, h := sampleReg()
		s := NewSampler(reg, 10, 16)
		for i := int64(1); i <= 200; i++ {
			c.Add(uint64(i % 7))
			g.Set(i % 13)
			h.Observe(i * 3)
			s.Tick(i * 10)
		}
		var buf bytes.Buffer
		if err := WriteSeriesNDJSON(&buf, s.Export("x")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different series exports")
	}
}

// A steady-state Tick without a live view attached must not allocate;
// neither must a nil sampler's.
func TestSamplerTickZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	reg, c, g, h := sampleReg()
	s := NewSampler(reg, 1, 64)
	now := int64(0)
	allocs := testing.AllocsPerRun(500, func() {
		now++
		c.Inc()
		g.Set(now)
		h.Observe(now)
		s.Tick(now)
	})
	if allocs != 0 {
		t.Fatalf("enabled Tick allocates %.1f/op, want 0", allocs)
	}
	var nilS *Sampler
	allocs = testing.AllocsPerRun(100, func() {
		now++
		nilS.Tick(now)
	})
	if allocs != 0 {
		t.Fatalf("nil Tick allocates %.1f/op, want 0", allocs)
	}
}

func TestNewSamplerNilRegistry(t *testing.T) {
	s := NewSampler(nil, 10, 0)
	if s != nil {
		t.Fatal("nil registry must yield a nil sampler")
	}
	s.Tick(5) // must not panic
	if s.Interval() != 0 || s.Len() != 0 || s.Export("x") != nil {
		t.Fatal("nil sampler accessors not zero-valued")
	}
}

func TestSeriesMerge(t *testing.T) {
	a := SeriesData{Name: "m", Kind: "counter",
		Points: [][2]float64{{10, 1}, {20, 2}, {40, 4}}}
	b := SeriesData{Name: "m", Kind: "counter",
		Points: [][2]float64{{20, 3}, {30, 5}}}
	got := a.Merge(b)
	want := [][2]float64{{10, 1}, {20, 5}, {30, 5}, {40, 4}}
	if len(got.Points) != len(want) {
		t.Fatalf("merged %v, want %v", got.Points, want)
	}
	for i := range want {
		if got.Points[i] != want[i] {
			t.Fatalf("merged %v, want %v", got.Points, want)
		}
	}
	// Gauges take the max at shared instants instead of summing.
	a.Kind = "gauge"
	got = a.Merge(b)
	if got.Points[1] != [2]float64{20, 3} {
		t.Fatalf("gauge merge at t=20: %v, want {20 3}", got.Points[1])
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := SeriesData{Name: "m", Kind: "gauge", Points: [][2]float64{
		{1, 1}, {2, 3}, {3, 5}, {4, 7}, {5, 9}}}
	got := s.Downsample(2)
	want := [][2]float64{{2, 2}, {4, 6}, {5, 9}}
	if len(got.Points) != len(want) {
		t.Fatalf("downsampled %v, want %v", got.Points, want)
	}
	for i := range want {
		if got.Points[i] != want[i] {
			t.Fatalf("downsampled %v, want %v", got.Points, want)
		}
	}
	if ds := s.Downsample(1); len(ds.Points) != len(s.Points) {
		t.Fatal("factor 1 must be identity")
	}
}

func TestSeriesNDJSONRoundTrip(t *testing.T) {
	in := []SeriesData{
		{Run: "r1", Name: "a", Kind: "counter", Points: [][2]float64{{10, 1}, {20, 2.5}}},
		{Name: "b", Kind: "gauge", Points: [][2]float64{{10, -3}}},
	}
	var buf bytes.Buffer
	if err := WriteSeriesNDJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSeriesNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip %d series, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Run != in[i].Run || out[i].Name != in[i].Name || out[i].Kind != in[i].Kind {
			t.Fatalf("series %d header mismatch: %+v vs %+v", i, out[i], in[i])
		}
		for j := range in[i].Points {
			if out[i].Points[j] != in[i].Points[j] {
				t.Fatalf("series %d point %d: %v vs %v", i, j, out[i].Points[j], in[i].Points[j])
			}
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	in := []SeriesData{
		{Name: "a", Kind: "counter", Points: [][2]float64{{10, 1}, {20, 2}}},
		{Name: "b", Kind: "gauge", Points: [][2]float64{{10, 0.5}, {20, math.Pi}}},
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines %d, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "t,a,b" {
		t.Fatalf("CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,1,0.5") {
		t.Fatalf("CSV row %q", lines[1])
	}
	// Misaligned series must error, not emit a ragged matrix.
	bad := []SeriesData{in[0], {Name: "c", Points: [][2]float64{{10, 1}}}}
	if err := WriteSeriesCSV(&buf, bad); err == nil {
		t.Fatal("misaligned CSV write did not error")
	}
}
