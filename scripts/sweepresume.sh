#!/bin/sh
# Sweep resume-determinism gate (CI job: sweep-resume).
#
# Proves the two load-bearing properties of the scale-out sweep fabric
# (internal/sweep) end to end, with real process exits:
#
#  1. Kill-resume determinism: a sharded sweep interrupted after every
#     fresh cell (-max-cells caps fresh simulations per invocation; the
#     process exits 3 while incomplete) and resumed from its STATE file
#     produces byte-identical merged NDJSON, merged manifest, and merge
#     stdout to an uninterrupted run of the same grid.
#
#  2. Warm re-runs execute zero fresh cells — first with the STATE
#     files intact (replay skips every cell), then with the STATE files
#     deleted but the content-addressed cache kept (every cell is
#     adopted from the cache).
set -eu
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/nwsweep" ./cmd/nwsweep

spec="$tmp/grid.txt"
cat > "$spec" <<'EOF'
name resume-gate
apps em3d,gauss
kinds standard,nwcache
modes naive
seeds 1..2
scale 0.05
EOF
# 2 apps x 2 kinds x 1 mode x 2 seeds = 8 cells, 4 per shard.

# Reference: one uninterrupted two-shard sweep.
ref="$tmp/ref"
"$tmp/nwsweep" -grid "$spec" -dir "$ref" -shard 0/2 -q
"$tmp/nwsweep" -grid "$spec" -dir "$ref" -shard 1/2 -q
"$tmp/nwsweep" -grid "$spec" -dir "$ref" -merge -shards 2 > "$tmp/ref-merge.txt"

# Interrupted: every invocation is capped at one fresh cell, so each
# shard is "killed" and resumed repeatedly until the STATE file carries
# it to completion.
int="$tmp/int"
for shard in 0/2 1/2; do
  rc=0
  "$tmp/nwsweep" -grid "$spec" -dir "$int" -shard "$shard" -max-cells 1 -q 2>/dev/null || rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "sweepresume: expected exit 3 (incomplete) from the capped run, got $rc" >&2
    exit 1
  fi
  tries=0
  while :; do
    rc=0
    "$tmp/nwsweep" -grid "$spec" -dir "$int" -shard "$shard" -max-cells 1 -q 2> "$tmp/last.log" || rc=$?
    cat "$tmp/last.log" >&2
    [ "$rc" -eq 0 ] && break
    if [ "$rc" -ne 3 ]; then
      echo "sweepresume: resume of shard $shard failed with $rc" >&2
      exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -ge 16 ]; then
      echo "sweepresume: shard $shard never completed (no resume progress?)" >&2
      exit 1
    fi
  done
done
"$tmp/nwsweep" -grid "$spec" -dir "$int" -merge -shards 2 > "$tmp/int-merge.txt"

echo "sweepresume: comparing interrupted-resumed vs uninterrupted artifacts" >&2
cmp "$ref/merged.ndjson" "$int/merged.ndjson"
cmp "$ref/merged.manifest.json" "$int/merged.manifest.json"
cmp "$tmp/ref-merge.txt" "$tmp/int-merge.txt"

# Warm leg A: STATE files intact — every cell replayed, zero fresh.
for shard in 0/2 1/2; do
  "$tmp/nwsweep" -grid "$spec" -dir "$int" -shard "$shard" -q 2> "$tmp/warm.log"
  cat "$tmp/warm.log" >&2
  grep -q "+ 0 fresh" "$tmp/warm.log" || {
    echo "sweepresume: warm STATE re-run of shard $shard executed fresh cells" >&2
    exit 1
  }
done

# Warm leg B: STATE deleted, cache kept — every cell adopted from the
# content-addressed cache, still zero fresh.
rm "$int"/shard-*.state
for shard in 0/2 1/2; do
  "$tmp/nwsweep" -grid "$spec" -dir "$int" -shard "$shard" -q 2> "$tmp/warm.log"
  cat "$tmp/warm.log" >&2
  grep -q "4 cache + 0 fresh" "$tmp/warm.log" || {
    echo "sweepresume: warm cache re-run of shard $shard did not adopt all cells" >&2
    exit 1
  }
done

# The merge after the warm legs must still be byte-identical.
"$tmp/nwsweep" -grid "$spec" -dir "$int" -merge -shards 2 > "$tmp/warm-merge.txt"
cmp "$tmp/ref-merge.txt" "$tmp/warm-merge.txt"
cmp "$ref/merged.ndjson" "$int/merged.ndjson"

echo "sweepresume: OK (kill-resume deterministic, warm re-runs ran 0 fresh cells)" >&2
