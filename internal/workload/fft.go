package workload

import "nwcache/internal/machine"

// FFT is the 1D fast Fourier transform of Table 2 (64K complex points),
// organized as the SPLASH-2 six-step algorithm over a sqrt(n) x sqrt(n)
// matrix of complex doubles: transpose, per-row FFTs, twiddle
// multiplication, transpose, per-row FFTs, transpose. Transposes generate
// the strided, non-sequential page traffic the paper calls out as
// defeating naive sequential prefetching.
type FFT struct {
	side  int // matrix side: side*side complex points
	src   Arr
	dst   Arr
	tw    Arr // twiddle factors (read-only)
	pages int64
}

// FFT cost model: butterflies per row FFT = 5*m*log2(m) cycles.
const fftCyclesPerButterfly = 5

// NewFFT builds the FFT program at the given scale. The paper's 64K points
// give a 256x256 matrix; scale shrinks the side (points scale ~linearly
// with the configured scale).
func NewFFT(scale float64) *FFT {
	side := 256
	for side*side > int(float64(65536)*scale) && side > 16 {
		side /= 2
	}
	f := &FFT{side: side}
	var sp Space
	bytes := int64(side) * int64(side) * 16 // complex double
	f.src = sp.Alloc("src", bytes)
	f.dst = sp.Alloc("dst", bytes)
	f.tw = sp.Alloc("twiddle", bytes)
	f.pages = sp.Pages()
	return f
}

// Name implements machine.Program.
func (f *FFT) Name() string { return "fft" }

// DataPages implements machine.Program.
func (f *FFT) DataPages() int64 { return f.pages }

// rowBytes is the byte length of one matrix row.
func (f *FFT) rowBytes() int64 { return int64(f.side) * 16 }

// transpose reads column i of `from` (one element from every row: the
// strided pattern) and writes row i of `to`, for this processor's rows.
func (f *FFT) transpose(ctx *machine.Ctx, from, to Arr, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < f.side; j++ {
			Read(ctx, from, int64(j)*f.rowBytes()+int64(i)*16, 16)
		}
		Write(ctx, to, int64(i)*f.rowBytes(), f.rowBytes())
		ctx.Compute(int64(f.side) * 2)
	}
	ctx.Barrier()
}

// rowFFT transforms this processor's rows of a in place.
func (f *FFT) rowFFT(ctx *machine.Ctx, a Arr, lo, hi int) {
	logm := 0
	for 1<<logm < f.side {
		logm++
	}
	for i := lo; i < hi; i++ {
		Read(ctx, a, int64(i)*f.rowBytes(), f.rowBytes())
		Write(ctx, a, int64(i)*f.rowBytes(), f.rowBytes())
		ctx.Compute(int64(f.side) * int64(logm) * fftCyclesPerButterfly)
	}
	ctx.Barrier()
}

// twiddle multiplies this processor's rows by the twiddle factors.
func (f *FFT) twiddle(ctx *machine.Ctx, a Arr, lo, hi int) {
	for i := lo; i < hi; i++ {
		Read(ctx, f.tw, int64(i)*f.rowBytes(), f.rowBytes())
		Read(ctx, a, int64(i)*f.rowBytes(), f.rowBytes())
		Write(ctx, a, int64(i)*f.rowBytes(), f.rowBytes())
		ctx.Compute(int64(f.side) * 6)
	}
	ctx.Barrier()
}

// Run implements machine.Program.
func (f *FFT) Run(ctx *machine.Ctx, proc int) {
	lo, hi := blockRange(f.side, ctx.Procs(), proc)
	f.transpose(ctx, f.src, f.dst, lo, hi) // step 1
	f.rowFFT(ctx, f.dst, lo, hi)           // step 2
	f.twiddle(ctx, f.dst, lo, hi)          // step 3
	f.transpose(ctx, f.dst, f.src, lo, hi) // step 4
	f.rowFFT(ctx, f.src, lo, hi)           // step 5
	f.transpose(ctx, f.src, f.dst, lo, hi) // step 6
}
