package optical

import (
	"nwcache/internal/sim"
)

// Notice is the control message a swapping node sends to the NWCache
// interface of the I/O node responsible for a page: "page P from node N is
// on channel N, write it to your disk eventually".
type Notice struct {
	Entry *Entry
}

// Iface is the NWCache interface of one I/O-enabled node: it keeps one
// FIFO queue per cache channel and, whenever the attached disk controller
// has room, snoops the most heavily loaded channel, copying pages in their
// original swap-out order until that channel's swap-outs are exhausted —
// the two properties (§3.2) that increase write locality in the disk
// cache.
type Iface struct {
	e    *sim.Engine
	ring *Ring
	node int // the I/O node this interface is plugged into

	fifos [][]*Notice // per channel, FIFO
	kick  *sim.Cond

	// DrainPolicy selects which channel to drain next; default MostLoaded.
	Policy DrainPolicy

	// Injected by the machine layer.
	DiskHasRoom func() bool
	// DiskInstall copies a drained page into the disk controller cache in
	// p's context (paying controller overhead and media scheduling);
	// returns false if the controller rejected it after all (slot raced
	// away), in which case the notice is retried.
	DiskInstall func(p *sim.Proc, page PageID) bool
	// SendACK delivers the ACK for a page that left the ring to the node
	// that swapped it out (entry.Channel).
	SendACK func(en *Entry)

	// Statistics.
	Drained  uint64
	Canceled uint64
	Batches  uint64
}

// DrainPolicy selects the next channel to drain.
type DrainPolicy int

// Drain policies. MostLoaded is the paper's; RoundRobin exists for the
// ablation study.
const (
	MostLoaded DrainPolicy = iota
	RoundRobin
)

// rrNext is the round-robin cursor (only used by RoundRobin policy).
var _ = RoundRobin

// NewIface creates the interface and starts its drain daemon.
func NewIface(e *sim.Engine, ring *Ring, node int) *Iface {
	f := &Iface{
		e:     e,
		ring:  ring,
		node:  node,
		fifos: make([][]*Notice, ring.Channels()),
		kick:  sim.NewCond(e),
	}
	e.SpawnDaemon("nwc-iface", f.drainLoop)
	return f
}

// Notify enqueues a swap-out notice (invoked at message arrival time).
func (f *Iface) Notify(n *Notice) {
	f.fifos[n.Entry.Channel] = append(f.fifos[n.Entry.Channel], n)
	f.kick.Signal()
}

// Kick re-evaluates drain opportunities (call when disk room appears).
func (f *Iface) Kick() { f.kick.Signal() }

// Cancel handles a victim-read notification: the page was re-mapped to
// memory straight from the ring, so it must not be written to disk. The
// notice is dropped from its FIFO and the ACK is sent to the swapper.
// The caller (fault path) has already Claimed the entry.
func (f *Iface) Cancel(en *Entry) {
	q := f.fifos[en.Channel]
	for i, n := range q {
		if n.Entry == en {
			f.fifos[en.Channel] = append(q[:i], q[i+1:]...)
			break
		}
	}
	f.Canceled++
	f.SendACK(en)
}

// PendingOn returns the FIFO depth for a channel.
func (f *Iface) PendingOn(ch int) int { return len(f.fifos[ch]) }

// Pending returns the total queued notices.
func (f *Iface) Pending() int {
	t := 0
	for _, q := range f.fifos {
		t += len(q)
	}
	return t
}

// pickChannel returns the channel to drain next, or -1 if none pending.
func (f *Iface) pickChannel(rr *int) int {
	switch f.Policy {
	case RoundRobin:
		for k := 0; k < len(f.fifos); k++ {
			ch := (*rr + k) % len(f.fifos)
			if len(f.fifos[ch]) > 0 {
				*rr = (ch + 1) % len(f.fifos)
				return ch
			}
		}
		return -1
	default: // MostLoaded
		best, bestLen := -1, 0
		for ch, q := range f.fifos {
			if len(q) > bestLen {
				best, bestLen = ch, len(q)
			}
		}
		return best
	}
}

// drainLoop is the interface's main daemon: whenever the disk controller
// has room, pick a channel and copy as many of its pages as possible, in
// swap-out order, before considering another channel.
func (f *Iface) drainLoop(p *sim.Proc) {
	rr := 0
	for {
		if f.Pending() == 0 || !f.DiskHasRoom() {
			f.kick.Wait(p)
			continue
		}
		ch := f.pickChannel(&rr)
		if ch < 0 {
			continue
		}
		f.Batches++
		// Exhaust this channel's swap-outs before switching (paper §3.2
		// property b), as long as the disk keeps providing room.
		for len(f.fifos[ch]) > 0 && f.DiskHasRoom() {
			n := f.fifos[ch][0]
			en := n.Entry
			if en.State != OnRing {
				// Claimed by a victim read (Cancel will drop it) or
				// already gone; skip past it.
				f.fifos[ch] = f.fifos[ch][1:]
				continue
			}
			en.State = Draining
			f.fifos[ch] = f.fifos[ch][1:]
			// Wait for the page to circulate past this interface and
			// stream it off the fiber. The disk is plugged directly into
			// the NWCache interface, so the copy bypasses the node's
			// memory and I/O buses entirely.
			f.ring.Snoop(p, en, f.node)
			if !f.DiskInstall(p, en.Page) {
				// Lost the slot race; put the notice back and retry.
				en.State = OnRing
				f.fifos[ch] = append([]*Notice{n}, f.fifos[ch]...)
				continue
			}
			f.Drained++
			f.ring.Drains++
			f.SendACK(en)
		}
	}
}
