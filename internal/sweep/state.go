package sweep

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"nwcache/internal/guard"
)

// The STATE file is the sweep's checkpoint: a line-based, append-only
// progress log (the pattern of disko-san's progress file — every write
// is synced and read back before it counts). One header line pins the
// grid and shard the file belongs to; every subsequent line records one
// completed or quarantined cell:
//
//	nwsweep-state v1 spec=<hex> shard=<i>/<n>
//	<cell-key> ok <result-digest> <duration_ns>
//	<cell-key> poison <reason-token> <duration_ns>
//
// Resume replays the file and skips recorded cells. The format is
// deliberately tolerant of exactly the failures an interrupted sweep
// produces:
//
//   - A truncated last line (the process died mid-append) is dropped
//     with a count, never an error — its cell simply re-runs.
//   - Duplicate keys (a resume recorded a cell the killed run had
//     already appended, or two resumes raced) are idempotent: the last
//     record wins.
//   - A header naming a different spec digest or shard layout is a hard
//     error: the file belongs to a different sweep and replaying it
//     would silently mismerge grids.
//
// A recorded cell is only trusted in combination with the result cache:
// the runner re-verifies the cache entry's digest against the STATE
// line and re-runs the cell on any mismatch (see Runner).

// stateMagic is the header prefix of a v1 STATE file.
const stateMagic = "nwsweep-state v1"

// Record statuses. A poison record quarantines a cell that panicked or
// blew its supervision budget: resume skips it (and the shard reports
// ErrPoisoned) unless the runner is told to retry, in which case a
// later "ok" record for the same key supersedes it — last record wins,
// same as every other duplicate.
const (
	StatusOK     = "ok"
	StatusPoison = "poison"
)

// StateRec is one replayed STATE line.
type StateRec struct {
	Key        string
	Status     string // StatusOK or StatusPoison
	Digest     string // ok records: the verified result digest
	Reason     string // poison records: the quarantine reason token
	DurationNS int64
}

// StateFile appends completed-cell records to an open STATE file with
// write-then-verify semantics: every Append syncs the file and reads
// the written bytes back before reporting success, so a record that
// Append accepted survives the process dying on the very next
// instruction.
type StateFile struct {
	f     guard.File
	retry *guard.Retrier
	off   int64 // verified file size
}

// OpenState opens (or creates) the STATE file at path for the given
// spec digest and shard layout, replays any existing records, and
// positions for appending. truncated counts dropped partial lines.
func OpenState(path, specDigest string, shard, shards int) (sf *StateFile, done map[string]StateRec, truncated int, err error) {
	return OpenStateOn(nil, nil, path, specDigest, shard, shards)
}

// OpenStateOn is OpenState through an explicit filesystem and retry
// budget: fsys is the host seam (nil: the real OS; chaos tests inject
// faults here) and retry bounds transient-I/O retries on the replay
// read and every append (nil: one attempt, no retries).
func OpenStateOn(fsys guard.FS, retry *guard.Retrier, path, specDigest string, shard, shards int) (sf *StateFile, done map[string]StateRec, truncated int, err error) {
	fsys = guard.Or(fsys)
	var blob []byte
	err = retry.Do(func() error {
		var rerr error
		blob, rerr = fsys.ReadFile(path)
		if os.IsNotExist(rerr) {
			blob = nil
			return nil
		}
		return rerr
	})
	if err != nil {
		return nil, nil, 0, err
	}
	header := fmt.Sprintf("%s spec=%s shard=%d/%d", stateMagic, specDigest, shard, shards)
	done = make(map[string]StateRec)
	verified := 0 // bytes of blob that parse as complete records
	if len(blob) > 0 {
		done, verified, truncated, err = replayState(blob, header)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("sweep: %s: %w", path, err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	// Drop any trailing partial line so the next append starts on a
	// clean record boundary.
	if err := f.Truncate(int64(verified)); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	sf = &StateFile{f: f, retry: retry, off: int64(verified)}
	if verified == 0 {
		if err := sf.appendLine(header); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	return sf, done, truncated, nil
}

// replayState parses the file contents. verified is the byte length of
// the complete-record prefix; a malformed line is only tolerated (and
// counted) when it is the unterminated tail of the file.
func replayState(blob []byte, wantHeader string) (done map[string]StateRec, verified, truncated int, err error) {
	done = make(map[string]StateRec)
	text := string(blob)
	off := 0
	first := true
	for off < len(text) {
		nl := strings.IndexByte(text[off:], '\n')
		if nl < 0 {
			// Unterminated tail: the process died mid-append. A record
			// without its newline is never trusted — even one that
			// happens to parse — so it is dropped and its cell re-runs.
			truncated++
			if first {
				// The header itself never finished: start the log over.
				return done, 0, truncated, nil
			}
			return done, verified, truncated, nil
		}
		line := text[off : off+nl]
		off += nl + 1
		if first {
			if strings.TrimSpace(line) != wantHeader {
				if strings.HasPrefix(line, stateMagic) {
					return nil, 0, 0, fmt.Errorf("STATE header %q does not match this sweep (%q) — wrong spec or shard layout", line, wantHeader)
				}
				return nil, 0, 0, fmt.Errorf("not a nwsweep STATE file (header %q)", line)
			}
			first = false
		} else if rec, ok := parseStateLine(line); ok {
			done[rec.Key] = rec // duplicates (resume-of-resume): last record wins
		} else {
			return nil, 0, 0, fmt.Errorf("corrupt STATE line %q in the middle of the log", line)
		}
		verified = off
	}
	return done, verified, truncated, nil
}

// parseStateLine decodes "<key> ok <digest> <duration_ns>" or
// "<key> poison <reason-token> <duration_ns>".
func parseStateLine(line string) (StateRec, bool) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return StateRec{}, false
	}
	if len(fields[0]) != 64 || !isHex(fields[0]) {
		return StateRec{}, false
	}
	dur, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil || dur < 0 {
		return StateRec{}, false
	}
	switch fields[1] {
	case StatusOK:
		if !strings.HasPrefix(fields[2], "sha256:") {
			return StateRec{}, false
		}
		return StateRec{Key: fields[0], Status: StatusOK, Digest: fields[2], DurationNS: dur}, true
	case StatusPoison:
		return StateRec{Key: fields[0], Status: StatusPoison, Reason: fields[2], DurationNS: dur}, true
	}
	return StateRec{}, false
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Append records one completed cell. The record is written, synced, and
// read back (write-then-verify) before Append returns nil.
func (sf *StateFile) Append(rec StateRec) error {
	return sf.appendLine(fmt.Sprintf("%s ok %s %d", rec.Key, rec.Digest, rec.DurationNS))
}

// AppendPoison quarantines a cell: it panicked or blew its supervision
// budget, and a resume must skip it instead of re-crashing. The reason
// is flattened to a single whitespace-free token so the record stays
// line-parseable.
func (sf *StateFile) AppendPoison(key, reason string, durationNS int64) error {
	reason = strings.Join(strings.Fields(reason), "-")
	if reason == "" {
		reason = "unknown"
	}
	return sf.appendLine(fmt.Sprintf("%s poison %s %d", key, reason, durationNS))
}

// appendLine writes line+"\n" at the verified offset, syncs, and
// verifies the bytes landed. The whole sequence is retried under the
// StateFile's retry budget: because the write targets a fixed verified
// offset, a torn or short first attempt is simply overwritten by the
// next one, and the verified offset only advances after a clean
// read-back.
func (sf *StateFile) appendLine(line string) error {
	payload := []byte(line + "\n")
	err := sf.retry.Do(func() error {
		if _, err := sf.f.WriteAt(payload, sf.off); err != nil {
			return fmt.Errorf("sweep: STATE append: %w", err)
		}
		if err := sf.f.Sync(); err != nil {
			return fmt.Errorf("sweep: STATE sync: %w", err)
		}
		back := make([]byte, len(payload))
		if _, err := sf.f.ReadAt(back, sf.off); err != nil {
			return fmt.Errorf("sweep: STATE verify read: %w", err)
		}
		if string(back) != string(payload) {
			// A mismatch at a fixed offset is a torn write: rewriting the
			// same bytes at the same offset repairs it, so retry.
			return guard.MarkTransient(fmt.Errorf("sweep: STATE verify mismatch: wrote %q, read %q", payload, back))
		}
		return nil
	})
	if err != nil {
		return err
	}
	sf.off += int64(len(payload))
	return nil
}

// Close closes the underlying file.
func (sf *StateFile) Close() error {
	if sf == nil || sf.f == nil {
		return nil
	}
	err := sf.f.Close()
	sf.f = nil
	return err
}
