// Package exp is the experiment harness: it re-runs the paper's evaluation
// (§5) — Tables 2 through 8 and the execution-time breakdowns of Figures 3
// and 4 — and renders each as an ASCII table next to the paper's reported
// values where useful.
//
// A Suite caches one simulation per (app, machine kind, prefetch mode)
// cell with the paper's per-configuration minimum-free-frames settings, so
// every table derives from the same consistent set of runs.
package exp

import (
	"fmt"
	"io"

	"nwcache/internal/core"
	"nwcache/internal/exp/pool"
	"nwcache/internal/machine"
	"nwcache/internal/stats"
	"nwcache/internal/workload"
)

// Suite runs and caches the evaluation matrix. All simulations go through
// a shared pool.Pool, so identical cells requested by different tables
// (or by a concurrent sweep sharing the same pool) run exactly once.
type Suite struct {
	cfg   core.Config
	sched *pool.Pool
	// Progress, if set, is called with a label for each simulation that
	// is actually started (cache hits are silent).
	Progress func(label string)
	// Observe, if set, is attached to every cell as its core.Cell.Obs
	// hook: it fires with the freshly built machine for each simulation
	// actually executed (memoized cells are served from cache without a
	// machine). Set it before the first submission.
	Observe func(core.Cell, *machine.Machine)
	// Par runs every cell with pipelined op-stream generation (the -par
	// parallel fast path). Results are byte-identical either way, so it
	// does not affect memoization. Set it before the first submission.
	Par bool
	// PDES, when >= 1, runs every cell under windowed PDES execution on
	// a shard group of that width (machine.NewPDES). Byte-identical to
	// serial and independent of Par — the two compose: Par pipelines
	// op-stream generation, PDES shards the event engine, and the pool
	// parallelizes across cells above both. Set before first submission.
	PDES int
}

// NewSuite creates an empty suite over the given base configuration. The
// minimum-free-frames floor is overridden per cell with the paper's
// choices (see core.PaperMinFree). The suite schedules on a private pool
// sized GOMAXPROCS; use NewSuiteOn to share a pool (and its memo cache)
// with other consumers or to bound concurrency differently.
func NewSuite(cfg core.Config) *Suite {
	return &Suite{cfg: cfg}
}

// NewSuiteOn creates a suite scheduling on the given pool.
func NewSuiteOn(cfg core.Config, p *pool.Pool) *Suite {
	return &Suite{cfg: cfg, sched: p}
}

// AddObserver appends fn to the suite's Observe hook, composing with any
// observer already installed (earlier observers fire first). Several
// independent consumers — manifest metrics, span tracing, time-series
// samplers, live -watch views — can then each attach to every fresh
// simulation without knowing about one another. Call before the first
// submission, like Observe itself.
func (s *Suite) AddObserver(fn func(core.Cell, *machine.Machine)) {
	if fn == nil {
		return
	}
	prev := s.Observe
	if prev == nil {
		s.Observe = fn
		return
	}
	s.Observe = func(c core.Cell, m *machine.Machine) {
		prev(c, m)
		fn(c, m)
	}
}

// pool returns the suite's scheduler, creating the default one on first
// use.
func (s *Suite) pool() *pool.Pool {
	if s.sched == nil {
		s.sched = pool.New(0)
	}
	return s.sched
}

// Pool exposes the suite's scheduler so callers can tune it — e.g.
// attach an on-disk result cache (pool.Backing) or adjust the memo
// bound before running the matrix.
func (s *Suite) Pool() *pool.Pool {
	return s.pool()
}

// cell builds the pool cell for one matrix coordinate, applying the
// paper's per-configuration minimum-free-frames floor.
func (s *Suite) cell(app string, kind core.Kind, mode core.PrefetchMode) core.Cell {
	return core.Cell{App: app, Kind: kind, Mode: mode,
		Cfg: core.ApplyPaperMinFree(s.cfg, kind, mode), Obs: s.Observe, Par: s.Par, Pdes: s.PDES}
}

// submit schedules one cell, reporting progress if it is fresh work.
func (s *Suite) submit(app string, kind core.Kind, mode core.PrefetchMode) *pool.Future {
	c := s.cell(app, kind, mode)
	f, fresh := s.pool().Submit(c)
	if fresh && s.Progress != nil {
		s.Progress(c.Label())
	}
	return f
}

// Prewarm runs every cell of the evaluation matrix, up to `parallel`
// simulations concurrently (each simulation is single-threaded and fully
// independent, so this is safe and near-linear). Subsequent table
// generation is then instantaneous. If the suite was built with NewSuite,
// the first Prewarm fixes the pool's concurrency bound.
func (s *Suite) Prewarm(parallel int) error {
	if s.sched == nil {
		s.sched = pool.New(parallel)
	}
	var futs []*pool.Future
	for _, app := range s.Apps() {
		for _, kind := range []core.Kind{core.Standard, core.NWCache} {
			for _, mode := range []core.PrefetchMode{core.Naive, core.Optimal} {
				futs = append(futs, s.submit(app, kind, mode))
			}
		}
	}
	// Collect in submission order so the first error is deterministic.
	var firstErr error
	for _, f := range futs {
		if _, err := f.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Get runs (or returns the cached) cell.
func (s *Suite) Get(app string, kind core.Kind, mode core.PrefetchMode) (*core.Result, error) {
	return s.submit(app, kind, mode).Wait()
}

// Apps returns the application list in paper order.
func (s *Suite) Apps() []string { return core.Apps() }

// Table2 reproduces Table 2: application footprints.
func (s *Suite) Table2() *stats.Table {
	t := &stats.Table{
		Title:   "Table 2: Application Data Sizes",
		Headers: []string{"Application", "Data (MB)", "Paper (MB)"},
	}
	paper := map[string]string{
		"em3d": "2.5", "fft": "3.1", "gauss": "2.3", "lu": "2.7",
		"mg": "2.4", "radix": "2.6", "sor": "2.6",
	}
	reg := workload.Registry(s.cfg.Scale, s.cfg.Seed)
	for _, app := range s.Apps() {
		mb := float64(reg[app].DataPages()) * float64(s.cfg.PageSize) / (1 << 20)
		t.AddRow(app, stats.FmtF(mb, 2), paper[app])
	}
	return t
}

// swapTable renders average swap-out times for a prefetch mode in the
// given unit (divisor pcycles).
func (s *Suite) swapTable(mode core.PrefetchMode, title, unit string, div float64) (*stats.Table, error) {
	t := &stats.Table{
		Title:   title,
		Headers: []string{"Application", "Standard (" + unit + ")", "NWCache (" + unit + ")", "Ratio"},
	}
	for _, app := range s.Apps() {
		std, err := s.Get(app, core.Standard, mode)
		if err != nil {
			return nil, err
		}
		nwc, err := s.Get(app, core.NWCache, mode)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if nwc.AvgSwapTime > 0 {
			ratio = std.AvgSwapTime / nwc.AvgSwapTime
		}
		t.AddRow(app,
			stats.FmtF(std.AvgSwapTime/div, 1),
			stats.FmtF(nwc.AvgSwapTime/div, 1),
			stats.FmtF(ratio, 1)+"x")
	}
	return t, nil
}

// Table3 reproduces Table 3: average swap-out times under optimal
// prefetching, in millions of pcycles.
func (s *Suite) Table3() (*stats.Table, error) {
	return s.swapTable(core.Optimal,
		"Table 3: Average Swap-Out Times under Optimal Prefetching", "Mpcycles", 1e6)
}

// Table4 reproduces Table 4: average swap-out times under naive
// prefetching, in thousands of pcycles.
func (s *Suite) Table4() (*stats.Table, error) {
	return s.swapTable(core.Naive,
		"Table 4: Average Swap-Out Times under Naive Prefetching", "Kpcycles", 1e3)
}

// combiningTable renders average write combining for a prefetch mode.
func (s *Suite) combiningTable(mode core.PrefetchMode, title string) (*stats.Table, error) {
	t := &stats.Table{
		Title:   title,
		Headers: []string{"Application", "Standard", "NWCache", "Increase"},
	}
	for _, app := range s.Apps() {
		std, err := s.Get(app, core.Standard, mode)
		if err != nil {
			return nil, err
		}
		nwc, err := s.Get(app, core.NWCache, mode)
		if err != nil {
			return nil, err
		}
		inc := 0.0
		if std.Combining > 0 {
			inc = nwc.Combining/std.Combining - 1
		}
		t.AddRow(app,
			stats.FmtF(std.Combining, 2),
			stats.FmtF(nwc.Combining, 2),
			stats.FmtPct(inc))
	}
	return t, nil
}

// Table5 reproduces Table 5: write combining under optimal prefetching.
func (s *Suite) Table5() (*stats.Table, error) {
	return s.combiningTable(core.Optimal, "Table 5: Average Write Combining under Optimal Prefetching")
}

// Table6 reproduces Table 6: write combining under naive prefetching.
func (s *Suite) Table6() (*stats.Table, error) {
	return s.combiningTable(core.Naive, "Table 6: Average Write Combining under Naive Prefetching")
}

// Table7 reproduces Table 7: NWCache page-read hit rates under both
// prefetching techniques.
func (s *Suite) Table7() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Table 7: NWCache Hit Rates (%)",
		Headers: []string{"Application", "Naive", "Optimal"},
	}
	for _, app := range s.Apps() {
		naive, err := s.Get(app, core.NWCache, core.Naive)
		if err != nil {
			return nil, err
		}
		opt, err := s.Get(app, core.NWCache, core.Optimal)
		if err != nil {
			return nil, err
		}
		t.AddRow(app,
			stats.FmtF(naive.RingHitRate*100, 1),
			stats.FmtF(opt.RingHitRate*100, 1))
	}
	return t, nil
}

// Table8 reproduces Table 8: average page-fault latency for disk cache
// hits under naive prefetching (a contention estimate), in Kpcycles.
func (s *Suite) Table8() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Table 8: Average Page-Fault Latency for Disk Cache Hits under Naive Prefetching (Kpcycles)",
		Headers: []string{"Application", "Standard", "NWCache", "Reduction"},
	}
	for _, app := range s.Apps() {
		std, err := s.Get(app, core.Standard, core.Naive)
		if err != nil {
			return nil, err
		}
		nwc, err := s.Get(app, core.NWCache, core.Naive)
		if err != nil {
			return nil, err
		}
		red := 0.0
		if std.FaultHitLat > 0 {
			red = 1 - nwc.FaultHitLat/std.FaultHitLat
		}
		t.AddRow(app,
			stats.FmtF(std.FaultHitLat/1e3, 1),
			stats.FmtF(nwc.FaultHitLat/1e3, 1),
			stats.FmtPct(red))
	}
	return t, nil
}

// Figure renders the normalized execution-time breakdown of Figure 3
// (optimal prefetching) or Figure 4 (naive prefetching): per application,
// the Standard and NWCache bars split into NoFree / Transit / Fault / TLB
// / Other, normalized to the standard machine's total.
func (s *Suite) Figure(mode core.PrefetchMode) (*stats.Table, error) {
	figure := "Figure 3 (Optimal Prefetching)"
	if mode == core.Naive {
		figure = "Figure 4 (Naive Prefetching)"
	}
	t := &stats.Table{
		Title: figure + ": Normalized Execution Time Breakdown",
		Headers: []string{"Application", "Machine", "NoFree", "Transit",
			"Fault", "TLB", "Other", "Total"},
	}
	for _, app := range s.Apps() {
		std, err := s.Get(app, core.Standard, mode)
		if err != nil {
			return nil, err
		}
		nwc, err := s.Get(app, core.NWCache, mode)
		if err != nil {
			return nil, err
		}
		base := float64(std.ExecTime)
		row := func(label string, r *core.Result) {
			// Average the per-node breakdowns, normalize to the standard
			// machine's execution time (the paper's bar height).
			n := float64(len(r.PerNode))
			var parts [stats.NumCategories]float64
			for _, b := range r.PerNode {
				for c := 0; c < int(stats.NumCategories); c++ {
					parts[c] += float64(b.T[c]) / n
				}
			}
			t.AddRow(app, label,
				stats.FmtF(parts[stats.NoFree]/base, 3),
				stats.FmtF(parts[stats.Transit]/base, 3),
				stats.FmtF(parts[stats.Fault]/base, 3),
				stats.FmtF(parts[stats.TLB]/base, 3),
				stats.FmtF(parts[stats.Other]/base, 3),
				stats.FmtF(float64(r.ExecTime)/base, 3))
		}
		row("standard", std)
		row("nwcache", nwc)
	}
	return t, nil
}

// FigureBars renders Figure 3 or 4 as stacked ASCII bars, one pair of
// bars (standard above NWCache) per application, normalized to the
// standard machine — the closest terminal rendition of the paper's
// figures.
func (s *Suite) FigureBars(mode core.PrefetchMode) (*stats.BarChart, error) {
	figure := "Figure 3 (Optimal Prefetching)"
	if mode == core.Naive {
		figure = "Figure 4 (Naive Prefetching)"
	}
	chart := &stats.BarChart{
		Title:    figure + ": Normalized Execution Time",
		Width:    60,
		Segments: []string{"NoFree", "Transit", "Fault", "TLB", "Other"},
	}
	for _, app := range s.Apps() {
		std, err := s.Get(app, core.Standard, mode)
		if err != nil {
			return nil, err
		}
		nwc, err := s.Get(app, core.NWCache, mode)
		if err != nil {
			return nil, err
		}
		base := float64(std.ExecTime)
		addBar := func(label string, r *core.Result) {
			n := float64(len(r.PerNode))
			vals := make([]float64, stats.NumCategories)
			for _, b := range r.PerNode {
				for c := 0; c < int(stats.NumCategories); c++ {
					vals[c] += float64(b.T[c]) / n / base
				}
			}
			chart.AddBar(label, vals...)
		}
		addBar(app+"/std", std)
		addBar(app+"/nwc", nwc)
	}
	return chart, nil
}

// Overall summarizes the headline result: NWCache execution-time
// improvement per application and prefetch mode.
func (s *Suite) Overall() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Overall: NWCache Execution-Time Improvement",
		Headers: []string{"Application", "Optimal", "Naive"},
	}
	for _, app := range s.Apps() {
		row := []string{app}
		for _, mode := range []core.PrefetchMode{core.Optimal, core.Naive} {
			std, err := s.Get(app, core.Standard, mode)
			if err != nil {
				return nil, err
			}
			nwc, err := s.Get(app, core.NWCache, mode)
			if err != nil {
				return nil, err
			}
			imp := 1 - float64(nwc.ExecTime)/float64(std.ExecTime)
			row = append(row, stats.FmtPct(imp))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Tables generates every table and figure in paper order.
func (s *Suite) Tables() ([]*stats.Table, error) {
	out := []*stats.Table{s.Table2()}
	for _, gen := range []func() (*stats.Table, error){
		s.Table3, s.Table4, s.Table5, s.Table6, s.Table7, s.Table8,
		func() (*stats.Table, error) { return s.Figure(core.Optimal) },
		func() (*stats.Table, error) { return s.Figure(core.Naive) },
		s.Overall,
	} {
		t, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// WriteAll renders every table and figure to w as aligned text.
func (s *Suite) WriteAll(w io.Writer) error {
	tables, err := s.Tables()
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Fprintln(w, t)
	}
	return nil
}

// WriteAllCSV renders every table and figure to w as CSV sections.
func (s *Suite) WriteAllCSV(w io.Writer) error {
	tables, err := s.Tables()
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.WriteCSV(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
