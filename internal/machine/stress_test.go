package machine

import (
	"math/rand"
	"testing"

	"nwcache/internal/disk"
	"nwcache/internal/param"
)

// stormProg drives random reads/writes over an oversubscribed footprint —
// the adversarial pattern for every queue in the system.
type stormProg struct {
	pages int64
	ops   int
}

func (s *stormProg) Name() string     { return "storm" }
func (s *stormProg) DataPages() int64 { return s.pages }
func (s *stormProg) Run(ctx *Ctx, proc int) {
	rng := rand.New(rand.NewSource(int64(proc)*31 + 7))
	for i := 0; i < s.ops; i++ {
		pg := PageID(rng.Int63n(s.pages))
		if rng.Intn(3) == 0 {
			ctx.Write(pg, rng.Intn(4), 8)
		} else {
			ctx.Read(pg, rng.Intn(4), 8)
		}
	}
	ctx.Barrier()
}

// runStress executes the storm on a configuration and validates the
// machine invariants afterwards.
func runStress(t *testing.T, cfg param.Config, kind Kind, mode disk.PrefetchMode) {
	t.Helper()
	m, err := New(cfg, kind, mode)
	if err != nil {
		t.Fatal(err)
	}
	prog := &stormProg{pages: int64(cfg.Nodes*cfg.FramesPerNode()) * 2, ops: 150}
	if _, err := m.Run(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(true); err != nil {
		t.Fatal(err)
	}
}

func TestStressPaperConfiguration(t *testing.T) {
	cfg := param.Default()
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	for _, kind := range []Kind{Standard, NWCache} {
		for _, mode := range []disk.PrefetchMode{disk.Naive, disk.Optimal, disk.Streamed} {
			runStress(t, cfg, kind, mode)
		}
	}
}

func TestStressSingleIONode(t *testing.T) {
	cfg := param.Default()
	cfg.IONodes = 1
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	runStress(t, cfg, Standard, disk.Naive)
	runStress(t, cfg, NWCache, disk.Naive)
}

func TestStressLargerMesh(t *testing.T) {
	cfg := param.Default()
	cfg.Nodes = 16
	cfg.MeshW = 4
	cfg.MeshH = 4
	cfg.IONodes = 4
	cfg.RingChannels = 16
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	runStress(t, cfg, Standard, disk.Optimal)
	runStress(t, cfg, NWCache, disk.Optimal)
}

func TestStressTinyRingChannel(t *testing.T) {
	// One-page channels maximize channel-full stalls and ACK churn.
	cfg := param.Default()
	cfg.RingChanBytes = cfg.PageSize
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	runStress(t, cfg, NWCache, disk.Optimal)
}

func TestStressMultiChannelRing(t *testing.T) {
	cfg := param.Default()
	cfg.RingChannels = 32 // 4 channels per node
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	runStress(t, cfg, NWCache, disk.Optimal)
}

func TestStressDCD(t *testing.T) {
	cfg := param.Default()
	cfg.DCD = true
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	runStress(t, cfg, Standard, disk.Naive)
	runStress(t, cfg, Standard, disk.Optimal)
}

func TestStressReadPriorityArm(t *testing.T) {
	cfg := param.Default()
	cfg.DiskReadPriority = true
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	runStress(t, cfg, Standard, disk.Naive)
	runStress(t, cfg, NWCache, disk.Naive)
}

func TestStressMinimalFrames(t *testing.T) {
	// 3 frames per node with a floor of 1: the tightest legal memory.
	cfg := param.Default()
	cfg.MemPerNode = 3 * cfg.PageSize
	cfg.MinFreeFrames = 1
	cfg.SwapQueueDepth = 1
	for _, kind := range []Kind{Standard, NWCache} {
		m, err := New(cfg, kind, disk.Optimal)
		if err != nil {
			t.Fatal(err)
		}
		prog := &stormProg{pages: 64, ops: 80}
		if _, err := m.Run(prog); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := m.CheckInvariants(true); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestMultiChannelImprovesThroughput(t *testing.T) {
	run := func(channels int) int64 {
		cfg := smallCfg()
		cfg.RingChannels = channels
		prog := &testProg{name: "burst", pages: 96, fn: func(ctx *Ctx, proc int) {
			for pg := PageID(proc * 96); pg < PageID(proc*96+96); pg++ {
				ctx.Write(pg, 0, 16)
			}
		}}
		res := runProg(t, cfg, NWCache, disk.Optimal, prog)
		return res.ExecTime
	}
	base := run(2) // one channel per node
	quad := run(8) // four channels per node
	if quad >= base {
		t.Fatalf("4x channels did not help: %d vs %d", quad, base)
	}
}

func TestShootdownInterruptsAllProcessors(t *testing.T) {
	cfg := smallCfg()
	m, err := New(cfg, Standard, disk.Naive)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 dirties enough pages to force evictions; node 1 only computes
	// but must still accumulate interrupt (TLB) time from shootdowns.
	prog := &testProg{name: "shoot", pages: 64, fn: func(ctx *Ctx, proc int) {
		if proc == 0 {
			for pg := PageID(0); pg < 40; pg++ {
				ctx.Write(pg, 0, 8)
			}
		} else {
			for i := 0; i < 200; i++ {
				ctx.Compute(5000)
				ctx.Read(63, 0, 1) // op boundary where interrupts are paid
			}
		}
		ctx.Barrier()
	}}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerNode[1].T[3] == 0 { // stats.TLB
		t.Fatal("node 1 never charged for shootdown interrupts")
	}
}

func TestStressPathologicalDiskParameters(t *testing.T) {
	// Extreme mechanical latencies must slow things down, never wedge the
	// protocols.
	cfg := param.Default()
	cfg.MinSeek = 50 * param.PcyclesPerMsec
	cfg.MaxSeek = 200 * param.PcyclesPerMsec
	cfg.RotLatency = 50 * param.PcyclesPerMsec
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	for _, kind := range []Kind{Standard, NWCache} {
		m, err := New(cfg, kind, disk.Naive)
		if err != nil {
			t.Fatal(err)
		}
		prog := &stormProg{pages: 64, ops: 40}
		if _, err := m.Run(prog); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := m.CheckInvariants(true); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestStressZeroLatencyRing(t *testing.T) {
	// Degenerate optics: instantaneous circulation must not divide by
	// zero or break pass timing.
	cfg := param.Default()
	cfg.RingRoundTrip = 8 // one pcycle per node segment
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	runStress(t, cfg, NWCache, disk.Optimal)
}

func TestStressTinyDiskCache(t *testing.T) {
	// A single-slot controller cache: combining impossible, NACKs
	// constant; everything must still drain.
	cfg := param.Default()
	cfg.DiskCacheBytes = cfg.PageSize
	cfg.MemPerNode = 8 * cfg.PageSize
	cfg.MinFreeFrames = 2
	runStress(t, cfg, Standard, disk.Naive)
	runStress(t, cfg, NWCache, disk.Naive)
}
