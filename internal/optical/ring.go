// Package optical implements the NWCache: the optical ring network/write
// cache hybrid of §3.2.
//
// The ring carries one writable WDM "cache channel" per node. A page
// swapped out by a node is inserted on that node's channel and circulates
// — the fiber is a delay-line memory — until either (a) the NWCache
// interface of the I/O node owning the page's disk copies it into the disk
// controller cache, or (b) a node faults on the page and snoops it
// straight off the channel (victim caching). In both cases an ACK flows
// back to the swapping node, which then reuses the channel slot and clears
// the page's Ring bit.
//
// Timing: a page inserted at t0 by node i passes node j at
// t0 + offset(i,j) + k·roundTrip, where offset is the fractional ring
// distance between the nodes. Snooping a page therefore waits for its next
// pass, then pays the channel-rate extraction time.
package optical

import (
	"fmt"

	"nwcache/internal/obs"
	"nwcache/internal/param"
	"nwcache/internal/sim"
)

// PageID is a virtual page number.
type PageID = int64

// EntryState tracks a page's life on the ring.
type EntryState int

// Entry states.
const (
	OnRing   EntryState = iota // circulating, available for drain or snoop
	Claimed                    // a faulting node is snooping it off
	Draining                   // the disk-side interface is copying it
	Gone                       // removed; slot released
)

// Entry is one page stored on a cache channel.
type Entry struct {
	Page       PageID
	Channel    int // owning channel == swapping node id
	InsertedAt sim.Time
	State      EntryState
	// Voided marks an entry destroyed by an injected I/O-node crash (the
	// fiber copy is gone without an ACK). The machine layer's recovery
	// policy decides whether that is data loss or triggers a mesh resend.
	Voided bool
}

// Channel is one WDM cache channel: the write path of a single node.
type Channel struct {
	owner   int
	slots   int
	entries []*Entry // insertion (FIFO) order, live entries only
}

// Used returns the number of occupied page slots.
func (c *Channel) Used() int { return len(c.entries) }

// Entries returns the live entries in insertion order. The slice is the
// channel's own storage: callers that mutate the channel while iterating
// (e.g. crash voiding) must copy it first.
func (c *Channel) Entries() []*Entry { return c.entries }

// HasRoom reports whether another page fits.
func (c *Channel) HasRoom() bool { return len(c.entries) < c.slots }

// Ring is the whole optical NWCache.
type Ring struct {
	e         *sim.Engine
	nodes     int
	roundTrip int64
	pageXfer  int64
	channels  []*Channel
	owned     [][]int // channel indices per node

	// Statistics.
	Inserts    uint64
	Drains     uint64
	VictimHits uint64
	PeakUsed   int

	// Per-channel observation handles, nil until Observe wires them (the
	// hot paths then pay one nil check each).
	chInserts []*obs.Counter
	chDrains  []*obs.Counter
	chVictims []*obs.Counter
	tgUsed    *obs.TimeGauge // ring occupancy over simulated time
}

// New builds the ring from the configuration. With RingChannels == Nodes
// (the paper's design) each node owns one writable cache channel; with
// more channels (the OTDM extension of §4 — "multiplexing techniques such
// as OTDM which will potentially support 5000 channels") the extra
// channels are distributed round-robin, giving nodes several independent
// transmitters and proportionally more optical storage.
func New(e *sim.Engine, cfg param.Config) *Ring {
	r := &Ring{
		e:         e,
		nodes:     cfg.Nodes,
		roundTrip: cfg.RingRoundTrip,
		pageXfer:  cfg.PageRingTime(),
		owned:     make([][]int, cfg.Nodes),
	}
	for i := 0; i < cfg.RingChannels; i++ {
		owner := i % cfg.Nodes
		r.channels = append(r.channels, &Channel{owner: owner, slots: cfg.RingSlotsPerChannel()})
		r.owned[owner] = append(r.owned[owner], i)
	}
	return r
}

// Channels returns the total channel count.
func (r *Ring) Channels() int { return len(r.channels) }

// ChannelOf returns node n's first writable channel (the paper's
// one-channel-per-node view).
func (r *Ring) ChannelOf(n int) *Channel { return r.channels[r.owned[n][0]] }

// OwnedChannels returns the indices of the channels node n can write.
func (r *Ring) OwnedChannels(n int) []int { return r.owned[n] }

// Channel returns channel i.
func (r *Ring) Channel(i int) *Channel { return r.channels[i] }

// PageXfer returns the time to insert or extract one page at channel rate.
func (r *Ring) PageXfer() int64 { return r.pageXfer }

// RoundTrip returns the ring's circulation period.
func (r *Ring) RoundTrip() int64 { return r.roundTrip }

// CrossNodeFloors returns the ring's two contributions to the PDES
// lookahead derivation (machine.DeriveLookahead). insert is the
// insertion-transfer floor: the minimum pcycles between a node committing
// a swap-out to its channel and the entry existing ring-wide (the
// machine layer pays PageXfer on the I/O bus before calling Insert).
// snoop is the state-coupling floor and it is zero: Insert is
// instantaneous bookkeeping at the completion instant, and a victim read
// on any other node observes the entry list in that same simulated
// instant (Channel.Entries is shared memory, not a message). A zero
// snoop floor means ring state binds every node into one PDES shard —
// conservative windows cannot cut between a swapping node and a
// potential victim reader.
func (r *Ring) CrossNodeFloors() (insert, snoop int64) { return r.pageXfer, 0 }

// HasRoomFor reports whether any of node's channels can take a page.
func (r *Ring) HasRoomFor(node int) bool {
	for _, i := range r.owned[node] {
		if r.channels[i].HasRoom() {
			return true
		}
	}
	return false
}

// Insert places a page on the first of node's channels with room. The
// caller must have checked HasRoomFor and already paid the local I/O bus
// + insertion transfer time; Insert itself is instantaneous bookkeeping
// at the completion instant.
func (r *Ring) Insert(node int, page PageID) *Entry {
	for _, i := range r.owned[node] {
		if r.channels[i].HasRoom() {
			return r.InsertOn(i, page)
		}
	}
	panic(fmt.Sprintf("optical: node %d: all channels full", node))
}

// InsertOn places a page on a specific channel, which must have room and
// be writable (owned); Insert is the usual entry point.
func (r *Ring) InsertOn(ch int, page PageID) *Entry {
	c := r.channels[ch]
	if !c.HasRoom() {
		panic(fmt.Sprintf("optical: channel %d overflow", ch))
	}
	en := &Entry{Page: page, Channel: ch, InsertedAt: r.e.Now(), State: OnRing}
	c.entries = append(c.entries, en)
	r.Inserts++
	if u := r.TotalUsed(); u > r.PeakUsed {
		r.PeakUsed = u
	}
	if r.chInserts != nil {
		r.chInserts[ch].Inc()
		r.tgUsed.Set(r.e.Now(), int64(r.TotalUsed()))
	}
	return en
}

// NoteDrain counts a page drained off channel ch to disk (called by the
// NWCache interface once the disk install succeeds).
func (r *Ring) NoteDrain(ch int) {
	r.Drains++
	if r.chDrains != nil {
		r.chDrains[ch].Inc()
	}
}

// NoteVictim counts a victim-cache hit snooped off channel ch (called by
// the faulting machine layer).
func (r *Ring) NoteVictim(ch int) {
	r.VictimHits++
	if r.chVictims != nil {
		r.chVictims[ch].Inc()
	}
}

// Observe wires the ring into an obs scope: aggregate totals as probes,
// plus per-channel insert/drain/victim-hit counters ("ch3.inserts") and
// a simulated-time occupancy gauge. No-op on a nil scope.
func (r *Ring) Observe(sc *obs.Scope) {
	if sc == nil {
		return
	}
	sc.ProbeCounter("inserts", func() int64 { return int64(r.Inserts) })
	sc.ProbeCounter("drains", func() int64 { return int64(r.Drains) })
	sc.ProbeCounter("victim_hits", func() int64 { return int64(r.VictimHits) })
	sc.ProbeGauge("peak_used", func() int64 { return int64(r.PeakUsed) })
	sc.ProbeGauge("used", func() int64 { return int64(r.TotalUsed()) })
	r.tgUsed = sc.TimeGauge("used_over_time")
	r.chInserts = make([]*obs.Counter, len(r.channels))
	r.chDrains = make([]*obs.Counter, len(r.channels))
	r.chVictims = make([]*obs.Counter, len(r.channels))
	for i := range r.channels {
		csc := sc.Scope(fmt.Sprintf("ch%d", i))
		r.chInserts[i] = csc.Counter("inserts")
		r.chDrains[i] = csc.Counter("drains")
		r.chVictims[i] = csc.Counter("victim_hits")
	}
}

// OwnerOf returns the node that writes channel ch.
func (r *Ring) OwnerOf(ch int) int { return r.channels[ch].owner }

// Release frees the entry's channel slot (called when the swapping node
// receives the ACK). Idempotent.
func (r *Ring) Release(en *Entry) {
	if en.State == Gone {
		return
	}
	en.State = Gone
	ch := r.channels[en.Channel]
	for i, x := range ch.entries {
		if x == en {
			ch.entries = append(ch.entries[:i], ch.entries[i+1:]...)
			if r.tgUsed != nil {
				r.tgUsed.Set(r.e.Now(), int64(r.TotalUsed()))
			}
			return
		}
	}
	panic(fmt.Sprintf("optical: releasing entry for page %d not on channel %d", en.Page, en.Channel))
}

// offset returns the ring propagation delay from node i to node j.
func (r *Ring) offset(i, j int) int64 {
	d := ((j-i)%r.nodes + r.nodes) % r.nodes
	return int64(d) * r.roundTrip / int64(r.nodes)
}

// NextPass returns the earliest time >= now at which the entry's page
// begins passing reader's interface.
func (r *Ring) NextPass(en *Entry, reader int, now sim.Time) sim.Time {
	first := en.InsertedAt + r.offset(r.OwnerOf(en.Channel), reader)
	if first >= now {
		return first
	}
	elapsed := now - first
	k := (elapsed + r.roundTrip - 1) / r.roundTrip
	return first + k*r.roundTrip
}

// Snoop sleeps p until the entry's page has fully streamed past reader's
// interface (next pass + extraction time). The entry must be Claimed or
// Draining by the caller beforehand so no one else grabs it.
func (r *Ring) Snoop(p *sim.Proc, en *Entry, reader int) {
	pass := r.NextPass(en, reader, p.Now())
	p.SleepUntil(pass + r.pageXfer)
}

// TotalUsed returns the number of pages currently stored on the ring.
func (r *Ring) TotalUsed() int {
	n := 0
	for _, ch := range r.channels {
		n += ch.Used()
	}
	return n
}

// FindOnChannel returns the live entry for page on any of node's owned
// channels, or nil. The paper's faulting node knows the swapping node from
// the page's last virtual-to-physical translation and searches its
// channel(s).
func (r *Ring) FindOnChannel(node int, page PageID) *Entry {
	for _, i := range r.owned[node] {
		for _, en := range r.channels[i].entries {
			if en.Page == page && en.State != Gone {
				return en
			}
		}
	}
	return nil
}
