package tlb

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	tb := New(4)
	if tb.Lookup(7) {
		t.Fatal("cold lookup hit")
	}
	if !tb.Lookup(7) {
		t.Fatal("second lookup missed")
	}
	if tb.Hits != 1 || tb.Misses != 1 {
		t.Fatalf("hits %d misses %d", tb.Hits, tb.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	tb := New(2)
	tb.Lookup(1)
	tb.Lookup(2)
	tb.Lookup(1) // 1 most recent; 2 is LRU
	tb.Lookup(3) // evicts 2
	if !tb.Contains(1) {
		t.Fatal("1 evicted although most recent")
	}
	if tb.Contains(2) {
		t.Fatal("2 not evicted although LRU")
	}
	if !tb.Contains(3) {
		t.Fatal("3 missing")
	}
}

func TestInvalidate(t *testing.T) {
	tb := New(4)
	tb.Lookup(9)
	if !tb.Invalidate(9) {
		t.Fatal("invalidate of present entry returned false")
	}
	if tb.Invalidate(9) {
		t.Fatal("double invalidate returned true")
	}
	if tb.Contains(9) {
		t.Fatal("entry survived invalidate")
	}
}

func TestFlush(t *testing.T) {
	tb := New(8)
	for p := int64(0); p < 8; p++ {
		tb.Lookup(p)
	}
	tb.Flush()
	if tb.Len() != 0 {
		t.Fatalf("len %d after flush", tb.Len())
	}
}

func TestContainsDoesNotPerturbLRU(t *testing.T) {
	tb := New(2)
	tb.Lookup(1)
	tb.Lookup(2)
	tb.Contains(1) // must NOT refresh 1
	tb.Lookup(3)   // evicts 1 (true LRU)
	if tb.Contains(1) {
		t.Fatal("Contains refreshed LRU position")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestCapacityNeverExceededProperty(t *testing.T) {
	f := func(pages []int16, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		tb := New(capacity)
		for _, p := range pages {
			tb.Lookup(int64(p))
			if tb.Len() > capacity {
				return false
			}
		}
		return tb.Hits+tb.Misses == uint64(len(pages))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
