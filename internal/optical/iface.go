package optical

import (
	"nwcache/internal/fault"
	"nwcache/internal/obs"
	"nwcache/internal/sim"
)

// chanFIFO is one cache channel's queue of swap-out notices, in original
// swap-out order. It is head-indexed: popping advances head instead of
// reslicing, so the backing array's capacity is kept and the steady-state
// enqueue/pop churn never allocates. The buffer compacts (resets to its
// start) whenever it empties.
type chanFIFO struct {
	q    []*Entry
	head int
}

func (f *chanFIFO) len() int { return len(f.q) - f.head }

func (f *chanFIFO) push(en *Entry) { f.q = append(f.q, en) }

func (f *chanFIFO) front() *Entry { return f.q[f.head] }

func (f *chanFIFO) pop() {
	f.head++
	if f.head == len(f.q) {
		f.q = f.q[:0]
		f.head = 0
	}
}

// unpop restores the most recently popped entry at the FRONT of the queue
// (retry after a lost slot race). The popped slot at q[head-1] survives
// unless the pop compacted the queue; in that case en is shifted in ahead
// of anything that arrived since.
func (f *chanFIFO) unpop(en *Entry) {
	if f.head > 0 {
		f.head--
		f.q[f.head] = en
		return
	}
	f.q = append(f.q, nil)
	copy(f.q[1:], f.q)
	f.q[0] = en
}

// remove drops the first occurrence of en, preserving order.
func (f *chanFIFO) remove(en *Entry) bool {
	for i := f.head; i < len(f.q); i++ {
		if f.q[i] == en {
			copy(f.q[i:], f.q[i+1:])
			f.q = f.q[:len(f.q)-1]
			if f.head == len(f.q) {
				f.q = f.q[:0]
				f.head = 0
			}
			return true
		}
	}
	return false
}

// Iface is the NWCache interface of one I/O-enabled node: it keeps one
// FIFO queue per cache channel and, whenever the attached disk controller
// has room, snoops the most heavily loaded channel, copying pages in their
// original swap-out order until that channel's swap-outs are exhausted —
// the two properties (§3.2) that increase write locality in the disk
// cache.
type Iface struct {
	e    *sim.Engine
	ring *Ring
	node int // the I/O node this interface is plugged into

	fifos []chanFIFO // per channel, FIFO
	kick  *sim.Cond

	// DrainPolicy selects which channel to drain next; default MostLoaded.
	Policy DrainPolicy

	// Injected by the machine layer.
	DiskHasRoom func() bool
	// DiskInstall copies a drained page into the disk controller cache in
	// p's context (paying controller overhead and media scheduling);
	// returns false if the controller rejected it after all (slot raced
	// away), in which case the notice is retried.
	DiskInstall func(p *sim.Proc, page PageID) bool
	// SendACK delivers the ACK for a page that left the ring to the node
	// that swapped it out (entry.Channel).
	SendACK func(en *Entry)

	// Statistics.
	Drained  uint64
	Canceled uint64
	Batches  uint64

	// Span tracing (nil when disabled): each successful drain becomes a
	// "ring.drain" span on tr's track.
	tr    *obs.Trace
	track int

	// Fault injection (nil = perfect fiber): per-drain corruption checks.
	flt *fault.Injector
}

// DrainPolicy selects the next channel to drain.
type DrainPolicy int

// Drain policies. MostLoaded is the paper's; RoundRobin exists for the
// ablation study.
const (
	MostLoaded DrainPolicy = iota
	RoundRobin
)

// rrNext is the round-robin cursor (only used by RoundRobin policy).
var _ = RoundRobin

// NewIface creates the interface and starts its drain daemon.
func NewIface(e *sim.Engine, ring *Ring, node int) *Iface {
	f := &Iface{
		e:     e,
		ring:  ring,
		node:  node,
		fifos: make([]chanFIFO, ring.Channels()),
		kick:  sim.NewCond(e).Named("nwc-iface.kick"),
	}
	e.SpawnDaemon("nwc-iface", f.drainLoop)
	return f
}

// Notify enqueues a swap-out notice: "page P from node N is on channel N,
// write it to your disk eventually" (invoked at message arrival time).
func (f *Iface) Notify(en *Entry) {
	f.fifos[en.Channel].push(en)
	f.kick.Signal()
}

// Kick re-evaluates drain opportunities (call when disk room appears).
func (f *Iface) Kick() { f.kick.Signal() }

// Cancel handles a victim-read notification: the page was re-mapped to
// memory straight from the ring, so it must not be written to disk. The
// notice is dropped from its FIFO and the ACK is sent to the swapper.
// The caller (fault path) has already Claimed the entry.
func (f *Iface) Cancel(en *Entry) {
	f.fifos[en.Channel].remove(en)
	f.Canceled++
	f.SendACK(en)
}

// Observe wires the interface's drain statistics into an obs scope as
// pull-based probes. No-op on a nil scope.
func (f *Iface) Observe(sc *obs.Scope) {
	if sc == nil {
		return
	}
	sc.ProbeCounter("drained", func() int64 { return int64(f.Drained) })
	sc.ProbeCounter("canceled", func() int64 { return int64(f.Canceled) })
	sc.ProbeCounter("batches", func() int64 { return int64(f.Batches) })
	sc.ProbeGauge("pending", func() int64 { return int64(f.Pending()) })
}

// SetTrace routes drain spans onto track of tr (nil disables).
func (f *Iface) SetTrace(tr *obs.Trace, track int) {
	f.tr, f.track = tr, track
}

// SetFaults attaches a fault injector (nil restores perfect fiber).
func (f *Iface) SetFaults(inj *fault.Injector) { f.flt = inj }

// PendingOn returns the FIFO depth for a channel.
func (f *Iface) PendingOn(ch int) int { return f.fifos[ch].len() }

// Pending returns the total queued notices.
func (f *Iface) Pending() int {
	t := 0
	for i := range f.fifos {
		t += f.fifos[i].len()
	}
	return t
}

// pickChannel returns the channel to drain next, or -1 if none pending.
func (f *Iface) pickChannel(rr *int) int {
	switch f.Policy {
	case RoundRobin:
		for k := 0; k < len(f.fifos); k++ {
			ch := (*rr + k) % len(f.fifos)
			if f.fifos[ch].len() > 0 {
				*rr = (ch + 1) % len(f.fifos)
				return ch
			}
		}
		return -1
	default: // MostLoaded
		best, bestLen := -1, 0
		for ch := range f.fifos {
			if n := f.fifos[ch].len(); n > bestLen {
				best, bestLen = ch, n
			}
		}
		return best
	}
}

// drainLoop is the interface's main daemon: whenever the disk controller
// has room, pick a channel and copy as many of its pages as possible, in
// swap-out order, before considering another channel.
func (f *Iface) drainLoop(p *sim.Proc) {
	rr := 0
	for {
		if f.Pending() == 0 || !f.DiskHasRoom() {
			f.kick.Wait(p)
			continue
		}
		ch := f.pickChannel(&rr)
		if ch < 0 {
			continue
		}
		f.Batches++
		// Exhaust this channel's swap-outs before switching (paper §3.2
		// property b), as long as the disk keeps providing room.
		for f.fifos[ch].len() > 0 && f.DiskHasRoom() {
			en := f.fifos[ch].front()
			if en.State != OnRing {
				// Claimed by a victim read (Cancel will drop it) or
				// already gone; skip past it.
				f.fifos[ch].pop()
				continue
			}
			en.State = Draining
			f.fifos[ch].pop()
			t0 := p.Now()
			// Wait for the page to circulate past this interface and
			// stream it off the fiber. The disk is plugged directly into
			// the NWCache interface, so the copy bypasses the node's
			// memory and I/O buses entirely.
			f.ring.Snoop(p, en, f.node)
			// Injected fiber corruption detected at extraction: the page
			// still circulates (a delay line has no partial reads), so the
			// "retransmit from the home node" costs exactly one more pass.
			for f.flt.DrainCorrupted() {
				f.ring.Snoop(p, en, f.node)
			}
			if !f.DiskInstall(p, en.Page) {
				// Lost the slot race; put the notice back and retry.
				en.State = OnRing
				f.fifos[ch].unpop(en)
				continue
			}
			f.Drained++
			f.ring.NoteDrain(en.Channel)
			f.tr.Span(f.track, "ring.drain", t0, p.Now())
			f.SendACK(en)
		}
	}
}
