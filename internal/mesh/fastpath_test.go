package mesh

import (
	"testing"

	"nwcache/internal/param"
	"nwcache/internal/sim"
)

// TestTransitZeroAlloc pins the allocation-free property of the per-message
// hot path: routed transfers reserve the precomputed link chain directly.
func TestTransitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inserts allocations")
	}
	e := sim.New()
	cfg := param.Default()
	m := New(e, cfg)
	now := sim.Time(0)
	if avg := testing.AllocsPerRun(500, func() {
		now = m.Transit(now, 0, 7, cfg.PageSize)
	}); avg != 0 {
		t.Fatalf("Transit allocates %.2f/op", avg)
	}
}

// TestAppendPathStagesZeroAlloc pins the caller-buffer variant: once the
// caller's scratch has grown to the longest route, staging is free.
func TestAppendPathStagesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inserts allocations")
	}
	e := sim.New()
	cfg := param.Default()
	m := New(e, cfg)
	buf := make([]sim.Stage, 0, 16)
	if avg := testing.AllocsPerRun(500, func() {
		stages := m.AppendPathStages(buf[:0], 0, 7, cfg.PageSize)
		if len(stages) == 0 {
			t.Fatal("empty route")
		}
	}); avg != 0 {
		t.Fatalf("AppendPathStages allocates %.2f/op", avg)
	}
}

// TestAppendPathStagesMatchesRoute checks the zero-alloc staging against
// the allocating reference for every node pair.
func TestAppendPathStagesMatchesRoute(t *testing.T) {
	e := sim.New()
	cfg := param.Default()
	m := New(e, cfg)
	for src := 0; src < cfg.Nodes; src++ {
		for dst := 0; dst < cfg.Nodes; dst++ {
			if src == dst {
				continue
			}
			want := m.PathStages(src, dst, cfg.PageSize)
			got := m.AppendPathStages(nil, src, dst, cfg.PageSize)
			if len(got) != len(want) {
				t.Fatalf("%d->%d: %d stages, want %d", src, dst, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%d->%d stage %d: %+v != %+v", src, dst, i, got[i], want[i])
				}
			}
		}
	}
}
