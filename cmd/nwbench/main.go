// Command nwbench regenerates the paper's evaluation: Tables 2-8 and the
// execution-time breakdowns of Figures 3 and 4, over the seven
// applications on both machines and both prefetching extremes.
//
// Usage:
//
//	nwbench [-scale 1.0] [-seed 1] [-table N | -figure N | -all] [-q]
//	        [-j N] [-cpuprofile out.pb.gz] [-memprofile out.pb.gz]
//
// With no selection flags, everything is printed (-all).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"nwcache/internal/core"
	"nwcache/internal/exp"
	"nwcache/internal/exp/pool"
	"nwcache/internal/stats"
)

func main() {
	var (
		scale      = flag.Float64("scale", 1.0, "workload scale (1.0 = paper's Table 2 inputs)")
		seed       = flag.Int64("seed", 1, "deterministic simulation seed")
		tableN     = flag.Int("table", 0, "print only table N (2-8)")
		figureN    = flag.Int("figure", 0, "print only figure N (3 or 4)")
		all        = flag.Bool("all", false, "print every table and figure")
		quiet      = flag.Bool("q", false, "suppress progress output")
		format     = flag.String("format", "text", "output format: text or csv")
		report     = flag.Bool("report", false, "emit a markdown paper-vs-measured report")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "max simulations to run concurrently")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.IntVar(jobs, "parallel", runtime.GOMAXPROCS(0), "alias for -j")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	cfg := core.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	suite := exp.NewSuiteOn(cfg, pool.New(*jobs))
	if !*quiet {
		suite.Progress = func(label string) {
			fmt.Fprintf(os.Stderr, "running %s...\n", label)
		}
	}

	if *report {
		if err := suite.Prewarm(*jobs); err != nil {
			fatal(err)
		}
		if err := suite.Report(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *tableN == 0 && *figureN == 0 {
		*all = true
	}
	if *all {
		if err := suite.Prewarm(*jobs); err != nil {
			fatal(err)
		}
		var err error
		if *format == "csv" {
			err = suite.WriteAllCSV(os.Stdout)
		} else {
			err = suite.WriteAll(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if *tableN != 0 {
		var t *stats.Table
		var err error
		switch *tableN {
		case 2:
			t = suite.Table2()
		case 3:
			t, err = suite.Table3()
		case 4:
			t, err = suite.Table4()
		case 5:
			t, err = suite.Table5()
		case 6:
			t, err = suite.Table6()
		case 7:
			t, err = suite.Table7()
		case 8:
			t, err = suite.Table8()
		default:
			fatal(fmt.Errorf("no table %d (have 2-8)", *tableN))
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
	if *figureN != 0 {
		var mode core.PrefetchMode
		switch *figureN {
		case 3:
			mode = core.Optimal
		case 4:
			mode = core.Naive
		default:
			fatal(fmt.Errorf("no figure %d (have 3 and 4)", *figureN))
		}
		t, err := suite.Figure(mode)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
		chart, err := suite.FigureBars(mode)
		if err != nil {
			fatal(err)
		}
		fmt.Println(chart)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nwbench:", err)
	os.Exit(1)
}

// writeMemProfile snapshots the heap into path (no-op when empty). A GC
// runs first so the profile reflects live objects, not garbage.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nwbench:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "nwbench:", err)
	}
}
