package machine

import (
	"nwcache/internal/disk"
	"nwcache/internal/optical"
	"nwcache/internal/sim"
	"nwcache/internal/trace"
	"nwcache/internal/vm"
)

// replaceLoop is one node's page-replacement daemon: whenever the free
// frame count sinks to the OS floor, it picks LRU victims and either frees
// them (clean) or starts swap-outs (dirty), with a bounded number of
// swap-outs outstanding.
func (m *Machine) replaceLoop(p *sim.Proc, n *Node) {
	for {
		if !n.Pool.BelowFloor() {
			n.Pool.Pressure.Wait(p)
			continue
		}
		page, ok := n.Pool.VictimLRU()
		if !ok {
			// Every frame is reserved or detached; wait for change.
			n.Pool.FrameFreed.Wait(p)
			continue
		}
		en := m.Table.Get(page)
		lockT0 := p.Now()
		en.Lock.Lock(p)
		_ = lockT0
		if en.State != vm.Resident || en.Owner != n.ID || !n.Pool.Contains(page) {
			en.Lock.Unlock() // raced with a concurrent transition; retry
			continue
		}
		// Access rights are being downgraded: machine-wide TLB shootdown.
		m.shootdown(n, page)
		if !en.Dirty {
			n.Pool.Remove(page)
			en.State = vm.Unmapped
			en.Owner = -1
			en.Arrived.Broadcast()
			en.Lock.Unlock()
			n.CleanEvicts++
			m.emit(trace.CleanEvict, n.ID, page, 0)
			m.invalidateCaches(page)
			continue
		}
		// Dirty: detach the frame (data still in it until taken) and mark
		// the page in transit so faulters wait out the swap.
		n.Pool.Unmap(page)
		en.State = vm.Transit
		en.TransitBy = -1
		en.LastSwapper = n.ID
		en.Owner = -1
		en.Lock.Unlock()
		m.invalidateCaches(page)
		n.SwapOuts++
		m.emit(trace.SwapStart, n.ID, page, 0)
		start := p.Now()
		n.swapSem.Acquire(p) // bound outstanding swap-outs
		job := n.takeJob(m)
		job.en, job.page, job.start = en, page, start
		m.E.Spawn(n.swapName, job.run)
	}
}

// takeJob pops a pooled swap job (or builds one with its process body
// pre-bound). The body returns the job to the pool when the swap-out
// completes, so steady-state swap issue allocates nothing beyond the
// process itself.
func (n *Node) takeJob(m *Machine) *swapJob {
	if k := len(n.swapJobs); k > 0 {
		j := n.swapJobs[k-1]
		n.swapJobs = n.swapJobs[:k-1]
		return j
	}
	j := &swapJob{}
	if m.Kind == NWCache {
		j.run = func(sp *sim.Proc) {
			m.swapToRing(sp, n, j.en, j.page, j.start)
			j.en = nil
			n.swapJobs = append(n.swapJobs, j)
		}
	} else {
		j.run = func(sp *sim.Proc) {
			m.swapToDisk(sp, n, j.en, j.page, j.start)
			j.en = nil
			n.swapJobs = append(n.swapJobs, j)
		}
	}
	return j
}

// shootdown models the paper's TLB-shootdown: the initiating processor
// runs the downgrade (ShootLat) and every other processor takes an
// interrupt (InterruptLat) and deletes its translation. Costs are charged
// to each CPU at its next operation.
func (m *Machine) shootdown(initiator *Node, page PageID) {
	initiator.TLB.Invalidate(page)
	initiator.pendingIntr += m.Cfg.TLBShootLat
	for _, other := range m.Nodes {
		if other == initiator {
			continue
		}
		other.TLB.Invalidate(page)
		other.pendingIntr += m.Cfg.InterruptLat
	}
}

// invalidateCaches drops every node's cached blocks and the directory
// state for a page that left memory (cached data must not outlive its
// page frame; the TLB shootdown's interrupts carry the cost).
func (m *Machine) invalidateCaches(page PageID) {
	for _, n := range m.Nodes {
		n.CC.DropPage(page)
	}
	m.Dir.DropPage(page)
}

// swapToDisk runs the standard machine's swap-out protocol: stream the
// page over the mesh to the disk controller; on NACK wait for the OK and
// resend. The frame is only reusable when the final ACK arrives.
func (m *Machine) swapToDisk(p *sim.Proc, n *Node, en *vm.Entry, page PageID, start sim.Time) {
	defer n.swapSem.Release()
	m.swapViaMesh(p, n, en, page, start)
}

// swapViaMesh finishes a swap-out over the standard mesh path: the
// Standard machine's only path, and the NWCache machine's fallback when
// an injected ring outage takes the node's transmitter down.
func (m *Machine) swapViaMesh(p *sim.Proc, n *Node, en *vm.Entry, page PageID, start sim.Time) {
	m.sendPageToDisk(p, n, page)
	n.Pool.ReleaseFrame()
	dur := p.Now() - start
	n.SwapTime.Add(float64(dur))
	n.SwapHist.Add(float64(dur))
	m.hSwap.Observe(dur)
	m.Spans.Span(m.swapTrack(n.ID), "swap.disk", start, p.Now())
	m.emit(trace.SwapDone, n.ID, page, dur)
	en.Lock.Lock(p)
	en.State = vm.Unmapped
	en.Owner = -1
	en.Dirty = false
	en.Arrived.Broadcast()
	en.Lock.Unlock()
}

// sendPageToDisk streams one page into its disk's controller cache —
// memory bus, mesh, I/O bus, the ACK/NACK/OK flow-control protocol —
// and returns once the final ACK has crossed back over the mesh.
func (m *Machine) sendPageToDisk(p *sim.Proc, n *Node, page PageID) {
	d, dn := m.DiskFor(page)
	block := m.Layout.BlockFor(page)
	for {
		// Page transfer: memory bus -> mesh -> I/O bus at the disk node.
		stages := append(n.stageBuf[:0], sim.Stage{
			Res: n.MemBus, Occupy: m.Cfg.PageMemBusTime(), Forward: m.Cfg.HopLatency,
		})
		stages = m.Mesh.AppendPathStages(stages, n.ID, dn, m.Cfg.PageSize)
		stages = append(stages, sim.Stage{Res: m.Nodes[dn].IOBus, Occupy: m.Cfg.PageIOBusTime()})
		_, arrive := sim.Pipeline(p.Now(), stages)
		n.stageBuf = stages[:0]
		p.SleepUntil(arrive)
		if d.Write(p, n.ID, page, block) == disk.ACK {
			break
		}
		// NACKed: the controller recorded us; wait for its OK message.
		m.emit(trace.DiskNACK, n.ID, page, int64(dn))
		n.waitOK(m.E, p, page)
		m.emit(trace.DiskOK, n.ID, page, int64(dn))
	}
	// ACK message back across the mesh; the frame is reusable on receipt.
	ackArrive := m.Mesh.Transit(p.Now(), dn, n.ID, m.Cfg.CtrlMsgLen)
	p.SleepUntil(ackArrive)
}

// swapToRing runs the NWCache swap-out: wait for room on this node's cache
// channel, stream the page onto the fiber through the local buses, and
// reuse the frame immediately. A notice message tells the responsible I/O
// node's NWCache interface to eventually drain the page to disk.
func (m *Machine) swapToRing(p *sim.Proc, n *Node, en *vm.Entry, page PageID, start sim.Time) {
	defer n.swapSem.Release()
	// Transmitters are serialized per node (ringTx covers all of the
	// node's channels; with the OTDM extension a node owns several, and
	// Insert picks the first with room).
	n.ringTx.Lock(p)
	for {
		if m.flt.RingTxDown(n.ID, p.Now()) {
			// Injected whole-channel outage: the transmitter is dark, so
			// this swap-out falls back to the standard mesh path.
			n.ringTx.Unlock()
			m.flt.NoteOutageFallback()
			m.swapViaMesh(p, n, en, page, start)
			return
		}
		if m.Ring.HasRoomFor(n.ID) {
			break
		}
		n.chanRoom.Wait(p)
	}
	stages := append(n.stageBuf[:0],
		sim.Stage{Res: n.MemBus, Occupy: m.Cfg.PageMemBusTime(), Forward: m.Cfg.HopLatency},
		sim.Stage{Res: n.IOBus, Occupy: m.Cfg.PageIOBusTime()},
	)
	_, arrive := sim.Pipeline(p.Now(), stages)
	n.stageBuf = stages[:0]
	p.SleepUntil(arrive)
	p.Sleep(m.Cfg.PageRingTime()) // modulation onto the writable channel
	entry := m.Ring.Insert(n.ID, page)
	n.ringTx.Unlock()
	m.flt.NoteRingInsert(p.Now())
	m.emit(trace.RingInsert, n.ID, page, 0)
	if m.conservative() {
		m.swapRingConservative(p, n, en, entry, page, start)
		return
	}
	// The frame is reusable right away — the page now lives on the ring.
	n.Pool.ReleaseFrame()
	dur := p.Now() - start
	n.SwapTime.Add(float64(dur))
	n.SwapHist.Add(float64(dur))
	m.hSwap.Observe(dur)
	m.Spans.Span(m.swapTrack(n.ID), "swap.ring", start, p.Now())
	m.emit(trace.SwapDone, n.ID, page, dur)
	en.Lock.Lock(p)
	en.State = vm.OnRing
	en.RingEntry = entry
	en.Owner = -1
	en.LastSwapper = n.ID
	en.Dirty = true // the disk has not seen this data yet
	en.Arrived.Broadcast()
	en.Lock.Unlock()
	// notice to the I/O node responsible for the page.
	_, dn := m.DiskFor(page)
	noticeArrive := m.Mesh.Transit(p.Now(), n.ID, dn, m.Cfg.CtrlMsgLen)
	g := m.takeMsg()
	g.kind, g.to, g.en = msgNotify, dn, entry
	m.E.At(noticeArrive, g.run)
}

// swapRingConservative finishes a ring swap-out under the conservative
// recovery policy: the page table sees the page OnRing (victim reads and
// drains proceed as usual), but the frame is held until the entry leaves
// the ring. If an injected I/O-node crash voids the entry first, the
// page is resent to disk from the still-held frame — the policy's whole
// point: slower frame reclamation, zero data loss.
func (m *Machine) swapRingConservative(p *sim.Proc, n *Node, en *vm.Entry, entry *optical.Entry, page PageID, start sim.Time) {
	en.Lock.Lock(p)
	en.State = vm.OnRing
	en.RingEntry = entry
	en.Owner = -1
	en.LastSwapper = n.ID
	en.Dirty = true // the disk has not seen this data yet
	en.Arrived.Broadcast()
	en.Lock.Unlock()
	_, dn := m.DiskFor(page)
	noticeArrive := m.Mesh.Transit(p.Now(), n.ID, dn, m.Cfg.CtrlMsgLen)
	g := m.takeMsg()
	g.kind, g.to, g.en = msgNotify, dn, entry
	m.E.At(noticeArrive, g.run)
	// Hold the frame until the page is safely off the ring (ACK received
	// or crash-voided); deliverRingACK and crashIONode broadcast chanRoom.
	for entry.State != optical.Gone {
		n.chanRoom.Wait(p)
	}
	if entry.Voided {
		t0 := p.Now()
		m.sendPageToDisk(p, n, page)
		m.flt.NoteRecovered(p.Now() - t0)
		en.Lock.Lock(p)
		if en.State == vm.OnRing && en.RingEntry == entry {
			en.State = vm.Unmapped
			en.Owner = -1
			en.RingEntry = nil
			en.Dirty = false
			en.Arrived.Broadcast()
		}
		en.Lock.Unlock()
	}
	n.Pool.ReleaseFrame()
	dur := p.Now() - start
	n.SwapTime.Add(float64(dur))
	n.SwapHist.Add(float64(dur))
	m.hSwap.Observe(dur)
	m.Spans.Span(m.swapTrack(n.ID), "swap.ring", start, p.Now())
	m.emit(trace.SwapDone, n.ID, page, dur)
}
